"""Command-line interface: ``repro-storage`` / ``python -m repro``.

Subcommands:

* ``profile [name]`` — print a power profile (default: the evaluation
  one), or — given a bench id like ``fig6`` — run that bench under
  cProfile and print the top-N cumulative table
  (see :mod:`repro.perf.benchprof`).
* ``simulate`` — one trace-driven run with a chosen scheduler.
* ``figure <figN>`` — reproduce one figure of the paper and print its
  series table.
* ``compare`` — quick cross-scheduler comparison at one replication factor.
* ``bench`` — run a figure/ablation through the parallel experiment
  harness and write a schema-versioned ``BENCH_<id>.json`` trajectory
  document (see :mod:`repro.experiments.harness.bench`).
* ``serve`` — run the async scheduling service under generated load and
  write a ``SERVE_<policy>.json`` session document
  (see :mod:`repro.serve`).
* ``lint`` — run reprolint, the domain-aware static-analysis pass
  (see :mod:`repro.checks`).

Every subcommand handler returns an explicit ``int`` exit status which
:func:`main` propagates unchanged — ``0`` success, ``1`` domain error,
``2`` usage error.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Tuple

from repro.analysis.tables import format_table
from repro.checks.cli import add_lint_arguments, run_lint_args
from repro.core.fleet import KERNELS, set_default_kernel
from repro.errors import ReproError
from repro.experiments import common, run_figure
from repro.experiments.figures import FIGURES
from repro.experiments.headline import headline_claims
from repro.power.profile import PAPER_EVAL, PROFILES, get_profile


def _add_kernel_argument(subparser: argparse.ArgumentParser) -> None:
    """``--kernel {python,numpy}`` on every simulation-running command."""
    subparser.add_argument(
        "--kernel",
        choices=KERNELS,
        default=None,
        help="cost-kernel implementation: 'numpy' scores disks through "
        "the columnar FleetCostState, 'python' through the scalar "
        "reference path; both are byte-identical "
        "(default: $REPRO_KERNEL or numpy)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-storage`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-storage",
        description="Energy-aware scheduling in disk storage systems "
        "(ICDCS 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser(
        "profile",
        help="print a disk power profile, or cProfile a bench "
        "(e.g. 'profile fig6')",
    )
    profile.add_argument(
        "name",
        nargs="?",
        default=PAPER_EVAL.name,
        help="a power-profile name, or a bench id to run under cProfile",
    )
    profile.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="trace/disk scale for bench profiling",
    )
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "--top", type=int, default=25, help="rows of the cProfile table"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
    )
    _add_kernel_argument(profile)

    figure = sub.add_parser("figure", help="reproduce one paper figure")
    figure.add_argument("figure_id", choices=sorted(FIGURES))
    _add_kernel_argument(figure)

    simulate = sub.add_parser("simulate", help="run one scheduler once")
    simulate.add_argument(
        "--trace", choices=("cello", "financial"), default="cello"
    )
    simulate.add_argument(
        "--scheduler",
        choices=("static", "random", "heuristic", "wsc", "mwis"),
        default="heuristic",
    )
    simulate.add_argument("--replication", type=int, default=3)
    simulate.add_argument("--zipf", type=float, default=1.0)
    simulate.add_argument("--alpha", type=float, default=0.2)
    simulate.add_argument("--beta", type=float, default=100.0)
    simulate.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-disk permanent failures per simulated second "
        "(0 disables fault injection)",
    )
    simulate.add_argument(
        "--tier",
        type=float,
        default=None,
        metavar="HOT_FRACTION",
        help="run the tiered disk/tape system, keeping this fraction of "
        "data ids (by popularity) on disk and the cold rest on tape; "
        "tiered runs are uncached and ignore --fault-rate",
    )
    simulate.add_argument(
        "--sequencer",
        default="nearest",
        help="LTSP tape sequencer family for --tier runs "
        "(fifo, nearest, scan, ltsp)",
    )
    simulate.add_argument(
        "--tape-drives",
        type=int,
        default=1,
        help="tape drives in the cold tier for --tier runs",
    )
    simulate.add_argument(
        "--tape-profile",
        default="lto-gen8",
        help="tape power-profile name for --tier runs",
    )
    _add_kernel_argument(simulate)

    compare = sub.add_parser("compare", help="compare all schedulers")
    compare.add_argument(
        "--trace", choices=("cello", "financial"), default="cello"
    )
    compare.add_argument("--replication", type=int, default=3)
    _add_kernel_argument(compare)

    headline = sub.add_parser(
        "headline", help="measure the paper's abstract claims"
    )
    headline.add_argument(
        "--trace", choices=("cello", "financial"), default="cello"
    )
    _add_kernel_argument(headline)

    bench = sub.add_parser(
        "bench",
        help="run a figure/ablation sweep and write BENCH_<id>.json",
    )
    bench.add_argument(
        "bench_id",
        nargs="?",
        default=None,
        help="a figure id (fig5..fig17), 'headline', 'fault_sweep', an "
        "ablation_* id, 'serve_sweep', 'serve_scale', 'tape_tier', 'all', "
        "or 'list' — 'list' prints them grouped by family (omit with "
        "--validate)",
    )
    bench.add_argument("--scale", type=float, default=None)
    bench.add_argument("--mwis-scale", type=float, default=None)
    bench.add_argument("--seed", type=int, default=None)
    bench.add_argument(
        "--jobs", type=int, default=1, help="process-pool workers"
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent run cache for this invocation",
    )
    bench.add_argument("--output-dir", default=".")
    bench.add_argument(
        "--validate",
        metavar="FILE",
        default=None,
        help="validate an existing BENCH_*.json instead of running",
    )
    _add_kernel_argument(bench)

    serve = sub.add_parser(
        "serve",
        help="run the async scheduling service under generated load",
    )
    serve.add_argument(
        "--policy",
        choices=("online", "micro-batch", "both"),
        default="both",
        help="dispatch policy ('both' runs one session per policy)",
    )
    serve.add_argument(
        "--requests", type=int, default=2_000, help="requests to generate"
    )
    serve.add_argument(
        "--rate", type=float, default=100.0, help="mean arrivals/second"
    )
    serve.add_argument("--clients", type=int, default=8)
    serve.add_argument(
        "--arrival", choices=("poisson", "bursty"), default="poisson"
    )
    serve.add_argument(
        "--loop",
        choices=("open", "closed"),
        default="open",
        help="open loop fires at fixed instants; closed loop waits for "
        "responses",
    )
    serve.add_argument(
        "--window", type=float, default=1.0, help="micro-batch window (s)"
    )
    serve.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="cap requests per window tick (default: whole queue)",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=1_024,
        help="bounded ingress capacity (backpressure)",
    )
    serve.add_argument(
        "--client-rate",
        type=float,
        default=None,
        help="per-client token-bucket rate (requests/s; default unlimited)",
    )
    serve.add_argument("--disks", type=int, default=18)
    serve.add_argument("--replication", type=int, default=3)
    serve.add_argument("--seed", type=int, default=3)
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the fleet across N worker processes behind the "
        "consistent-hash router (1 = single-process service)",
    )
    serve.add_argument(
        "--replication-factor",
        type=int,
        default=1,
        help="cross-SHARD replication: place each data id on this many "
        "distinct shards so the router can fail a dead shard's keys "
        "over (needs --shards >= the factor; distinct from "
        "--replication, the in-shard disk replica count)",
    )
    serve.add_argument(
        "--kill",
        action="append",
        default=[],
        metavar="SHARD@TIME[@RECOVER_AT]",
        help="chaos drill: SIGKILL shard SHARD at schedule instant TIME; "
        "with @RECOVER_AT the supervisor restarts it (replaying its "
        "outbox) at that instant (repeatable; needs --shards > 1)",
    )
    serve.add_argument(
        "--hang",
        action="append",
        default=[],
        metavar="SHARD@TIME",
        help="chaos drill: SIGSTOP shard SHARD at schedule instant TIME "
        "— alive but silent until the barrier's response timeout "
        "escalates it (repeatable; needs --shards > 1)",
    )
    serve.add_argument(
        "--recover",
        action="store_true",
        help="supervise workers: restart a dead or hung shard at the "
        "collection barrier and replay its unanswered requests "
        "instead of shedding its keyspace",
    )
    serve.add_argument(
        "--response-timeout",
        type=float,
        default=None,
        help="wall seconds of worker silence before the barrier "
        "escalates it as hung (default: 30 when --hang is used)",
    )
    serve.add_argument(
        "--assert-availability",
        type=float,
        default=None,
        metavar="FRACTION",
        help="exit non-zero unless the completed fraction of every "
        "policy's run is at least FRACTION (the chaos-drill SLO gate)",
    )
    serve.add_argument(
        "--drain-grace",
        type=float,
        default=2.0,
        help="seconds before the final forced flush at shutdown",
    )
    serve.add_argument(
        "--wall",
        action="store_true",
        help="run on the wall clock instead of the deterministic "
        "virtual clock",
    )
    serve.add_argument("--output-dir", default=".")

    lint = sub.add_parser(
        "lint", help="run reprolint (domain-aware static analysis)"
    )
    add_lint_arguments(lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code.

    Every handler returns its own explicit status; this function only
    dispatches and maps :class:`ReproError` to exit code 1.
    """
    args = build_parser().parse_args(argv)
    handlers = {
        "profile": _run_profile,
        "figure": _run_figure,
        "simulate": _run_simulate,
        "compare": _run_compare,
        "headline": _run_headline,
        "bench": _run_bench,
        "serve": _run_serve,
        "lint": run_lint_args,
    }
    kernel = getattr(args, "kernel", None)
    if kernel is not None:
        # Process-wide switch: every SimulationConfig built by the
        # handler (workers inherit it across fork) resolves to this
        # kernel unless a config pins one explicitly.
        set_default_kernel(kernel)
    try:
        return handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _run_figure(args: argparse.Namespace) -> int:
    result = run_figure(args.figure_id)
    if isinstance(result, str):
        print(result)
    elif isinstance(result, dict):
        for panel in result.values():
            print(panel.render())
            print()
    elif isinstance(result, tuple):
        for part in result:
            print(part.render())
            print()
    else:
        print(result.render())
    return 0


def _run_headline(args: argparse.Namespace) -> int:
    print(headline_claims(args.trace).render())
    return 0


def _run_profile(args: argparse.Namespace) -> int:
    """Power-profile names print the profile; bench ids run cProfile."""
    if args.name in PROFILES:
        print(get_profile(args.name).describe())
        return 0
    # Imported lazily: pulls in the full harness import graph.
    from repro.perf.benchprof import profile_bench

    print(
        profile_bench(
            args.name,
            scale=args.scale,
            seed=args.seed,
            top=args.top,
            sort=args.sort,
        )
    )
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench module sits above the figure modules in
    # the import graph and is only needed by this subcommand.
    from repro.experiments.harness import bench as bench_mod
    from repro.experiments.harness.cache import RunCache
    from repro.experiments.harness.schema import validate_bench_file

    if args.validate is not None:
        violations = validate_bench_file(args.validate)
        if violations:
            for violation in violations:
                print(f"schema violation: {violation}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid bench document")
        return 0

    if args.bench_id is None:
        print(
            "error: bench_id is required unless --validate is given",
            file=sys.stderr,
        )
        return 2
    if args.bench_id == "list":
        for family_index, family in enumerate(bench_mod.BENCH_FAMILIES):
            members = [
                definition
                for definition in bench_mod.BENCHES.values()
                if definition.family == family
            ]
            if not members:
                continue
            if family_index:
                print()
            print(f"{family}:")
            for definition in members:
                print(
                    f"  {definition.bench_id:24s} {definition.description}"
                )
        orphans = [
            definition
            for definition in bench_mod.BENCHES.values()
            if definition.family not in bench_mod.BENCH_FAMILIES
        ]
        if orphans:
            print()
            print("other:")
            for definition in orphans:
                print(
                    f"  {definition.bench_id:24s} {definition.description}"
                )
        return 0

    cache = RunCache(enabled=False) if args.no_cache else None
    kwargs = dict(
        scale=args.scale,
        mwis_scale=args.mwis_scale,
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        output_dir=args.output_dir,
    )
    if args.bench_id == "all":
        for path in bench_mod.run_all(**kwargs):
            print(f"wrote {path}")
        return 0
    payload, path = bench_mod.run_bench(args.bench_id, **kwargs)
    cache_stats = payload["cache"]
    print(f"wrote {path}")
    print(
        f"wall {payload['wall_clock_s']:.2f}s  "
        f"events {payload['events_processed']}  "
        f"({payload['events_per_sec']:.0f}/s)  "
        f"cache {cache_stats['hits']}/{cache_stats['hits'] + cache_stats['misses']}"
        f" hits ({cache_stats['hit_rate']:.0%})"
    )
    return 0


def _run_serve(args: argparse.Namespace) -> int:
    """Run one serving session per requested policy, write the reports."""
    # Imported lazily: the serving stack is only needed here.
    import asyncio

    from repro.serve import (
        LoadgenConfig,
        SchedulingService,
        ServiceConfig,
        run_load,
        serve_document,
        virtual_run,
        write_serve_document,
    )

    policies = (
        ("online", "micro-batch") if args.policy == "both" else (args.policy,)
    )
    output_dir = Path(args.output_dir)
    output_dir.mkdir(parents=True, exist_ok=True)
    if args.shards > 1:
        return _run_serve_sharded(args, policies, output_dir)
    if (
        args.replication_factor > 1
        or args.kill
        or args.hang
        or args.recover
        or args.assert_availability is not None
    ):
        print(
            "error: --replication-factor/--kill/--hang/--recover/"
            "--assert-availability are sharded-deployment flags; "
            "add --shards > 1",
            file=sys.stderr,
        )
        return 2
    for policy in policies:
        service = SchedulingService(
            ServiceConfig(
                policy=policy,
                num_disks=args.disks,
                replication_factor=args.replication,
                seed=args.seed,
                queue_limit=args.queue_limit,
                client_rate_per_s=args.client_rate,
                window_s=args.window,
                max_batch=args.max_batch,
            )
        )
        load = LoadgenConfig(
            num_requests=args.requests,
            rate_per_s=args.rate,
            num_clients=args.clients,
            arrival=args.arrival,
            loop=args.loop,
            seed=args.seed,
        )

        async def session() -> None:
            result = await run_load(service, load, drain_grace_s=args.drain_grace)
            document = serve_document(
                service, load, result, virtual_clock=not args.wall
            )
            name = policy.replace("-", "_")
            path = write_serve_document(
                document, output_dir / f"SERVE_{name}.json"
            )
            metrics = document["result"]["metrics"]
            response = metrics["histograms"]["response_s"]
            print(f"wrote {path}")
            print(
                f"  {policy}: {result.completed}/{result.offered} completed, "
                f"{result.rejected} rejected, "
                f"{metrics['gauges']['energy.joules']:.0f} J, "
                f"p95 {response['p95']:.3f}s, "
                f"{document['wall_clock_s']:.1f} virtual s"
            )

        if args.wall:
            asyncio.run(session())
        else:
            virtual_run(session())
    return 0


def _run_serve_sharded(
    args: argparse.Namespace,
    policies: Tuple[str, ...],
    output_dir: Path,
) -> int:
    """Run one sharded deployment per policy, write the merged reports.

    Writes the same ``SERVE_<policy>.json`` filenames as the unsharded
    path, so CI's byte-compare determinism checks work unchanged.
    """
    from repro.errors import ConfigurationError
    from repro.serve.loadgen import LoadgenConfig
    from repro.serve.reporting import write_serve_document
    from repro.serve.shard import (
        ShardHang,
        ShardKill,
        ShardedServiceConfig,
        run_sharded,
        sharded_document,
    )

    def parse_kill(spec: str) -> ShardKill:
        parts = spec.split("@")
        if len(parts) not in (2, 3):
            raise ConfigurationError(
                f"--kill wants SHARD@TIME[@RECOVER_AT], got {spec!r}"
            )
        return ShardKill(
            shard_id=int(parts[0]),
            time_s=float(parts[1]),
            recover_at_s=float(parts[2]) if len(parts) == 3 else None,
        )

    def parse_hang(spec: str) -> ShardHang:
        parts = spec.split("@")
        if len(parts) != 2:
            raise ConfigurationError(f"--hang wants SHARD@TIME, got {spec!r}")
        return ShardHang(shard_id=int(parts[0]), time_s=float(parts[1]))

    if args.wall:
        print(
            "error: --wall is single-process only; sharded runs are "
            "virtual-clock by construction",
            file=sys.stderr,
        )
        return 2
    if args.loop != "open":
        print(
            "error: --shards needs an open-loop schedule; closed-loop "
            "sessions are single-process only",
            file=sys.stderr,
        )
        return 2
    try:
        kills = tuple(parse_kill(spec) for spec in args.kill)
        hangs = tuple(parse_hang(spec) for spec in args.hang)
    except (ConfigurationError, ValueError) as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    status = 0
    for policy in policies:
        config = ShardedServiceConfig(
            policy=policy,
            num_shards=args.shards,
            num_disks=args.disks,
            replication_factor=args.replication,
            shard_replication_factor=args.replication_factor,
            seed=args.seed,
            queue_limit=args.queue_limit,
            client_rate_per_s=args.client_rate,
            window_s=args.window,
            max_batch=args.max_batch,
            drain_grace_s=args.drain_grace,
        )
        load = LoadgenConfig(
            num_requests=args.requests,
            rate_per_s=args.rate,
            num_clients=args.clients,
            arrival=args.arrival,
            seed=args.seed,
        )
        run = run_sharded(
            config,
            load,
            kills=kills,
            hangs=hangs,
            supervise=args.recover,
            response_timeout_s=args.response_timeout,
        )
        document = sharded_document(config, load, run)
        name = policy.replace("-", "_")
        path = write_serve_document(document, output_dir / f"SERVE_{name}.json")
        outcome = document["result"]["outcome"]
        print(f"wrote {path}")
        print(
            f"  {policy} x{args.shards} shards: "
            f"{outcome['completed']}/{outcome['offered']} completed, "
            f"{outcome['rejected']} rejected, "
            f"{run.events_processed} events, "
            f"critical path {run.critical_path_s:.2f}s wall"
        )
        if kills or hangs or args.recover:
            print(
                f"  chaos: availability {run.availability:.4f}, "
                f"{len(run.shards_down)} shard(s) down at end, "
                f"{run.requests_lost} lost, "
                f"{run.requests_failed_over} failed over, "
                f"{run.requests_replayed} replayed, "
                f"{run.duplicates_suppressed} duplicate(s) suppressed"
            )
            for report in run.recoveries:
                print(
                    f"  recovery: shard {report.shard_id} ({report.reason}) "
                    f"rejoined after {report.downtime_wall_s:.2f}s wall, "
                    f"{report.spawn_attempts} spawn attempt(s), "
                    f"{report.requests_replayed} replayed, "
                    f"{report.requests_failed_over} failed over"
                )
        if (
            args.assert_availability is not None
            and run.availability < args.assert_availability
        ):
            print(
                f"error: availability {run.availability:.4f} is below the "
                f"--assert-availability bound {args.assert_availability}",
                file=sys.stderr,
            )
            status = 1
    return status


def _run_simulate(args: argparse.Namespace) -> int:
    if args.tier is not None:
        return _run_simulate_tiered(args)
    result = common.run_cell(
        args.trace,
        args.replication,
        args.scheduler,
        zipf_exponent=args.zipf,
        alpha=args.alpha,
        beta=args.beta,
        fault_rate=args.fault_rate,
    )
    print(result.report.summary())
    print(f"normalized energy    : {result.normalized_energy:.3f} (vs always-on)")
    return 0


def _run_simulate_tiered(args: argparse.Namespace) -> int:
    """One tiered (disk + tape) run: live, uncached, deterministic."""
    # Imported lazily: only --tier runs need the tape subsystem.
    from dataclasses import replace

    from repro.sim.runner import simulate as run_simulation
    from repro.tape.config import TierConfig
    from repro.tape.profile import get_tape_profile

    requests, catalog, num_disks = common.get_binding(
        args.trace, args.replication, zipf_exponent=args.zipf
    )
    scheduler = common.make_scheduler_for_key(
        args.scheduler, alpha=args.alpha, beta=args.beta
    )
    tier = TierConfig(
        hot_fraction=args.tier,
        num_tape_drives=args.tape_drives,
        sequencer=args.sequencer,
        tape_profile=get_tape_profile(args.tape_profile),
    )
    config = replace(common.make_config(num_disks), tier=tier)
    report = run_simulation(requests, catalog, scheduler, config)
    print(report.summary())
    return 0


def _run_compare(args: argparse.Namespace) -> int:
    rows = []
    for key in ("static", "random", "heuristic", "wsc", "mwis"):
        result = common.run_cell(args.trace, args.replication, key)
        rows.append(
            [
                common.SCHEDULER_LABELS[key],
                f"{result.normalized_energy:.3f}",
                result.spin_operations,
                f"{result.mean_response_time * 1000:.0f}"
                if result.report.response_times
                else "n/a",
            ]
        )
    print(
        format_table(
            ["scheduler", "energy (norm.)", "spin ops", "mean resp (ms)"],
            rows,
            title=f"{args.trace} trace, replication {args.replication}",
        )
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
