"""Command-line interface: ``repro-storage`` / ``python -m repro``.

Subcommands:

* ``profile [name]`` — print a power profile (default: the evaluation
  one), or — given a bench id like ``fig6`` — run that bench under
  cProfile and print the top-N cumulative table
  (see :mod:`repro.perf.benchprof`).
* ``simulate`` — one trace-driven run with a chosen scheduler.
* ``figure <figN>`` — reproduce one figure of the paper and print its
  series table.
* ``compare`` — quick cross-scheduler comparison at one replication factor.
* ``bench`` — run a figure/ablation through the parallel experiment
  harness and write a schema-versioned ``BENCH_<id>.json`` trajectory
  document (see :mod:`repro.experiments.harness.bench`).
* ``lint`` — run reprolint, the domain-aware static-analysis pass
  (see :mod:`repro.checks`).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.tables import format_table
from repro.checks.cli import add_lint_arguments, run_lint_args
from repro.errors import ReproError
from repro.experiments import common, run_figure
from repro.experiments.figures import FIGURES
from repro.experiments.headline import headline_claims
from repro.power.profile import PAPER_EVAL, PROFILES, get_profile


def build_parser() -> argparse.ArgumentParser:
    """Build the ``repro-storage`` argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-storage",
        description="Energy-aware scheduling in disk storage systems "
        "(ICDCS 2011 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    profile = sub.add_parser(
        "profile",
        help="print a disk power profile, or cProfile a bench "
        "(e.g. 'profile fig6')",
    )
    profile.add_argument(
        "name",
        nargs="?",
        default=PAPER_EVAL.name,
        help="a power-profile name, or a bench id to run under cProfile",
    )
    profile.add_argument(
        "--scale",
        type=float,
        default=0.1,
        help="trace/disk scale for bench profiling",
    )
    profile.add_argument("--seed", type=int, default=1)
    profile.add_argument(
        "--top", type=int, default=25, help="rows of the cProfile table"
    )
    profile.add_argument(
        "--sort",
        choices=("cumulative", "tottime", "calls"),
        default="cumulative",
    )

    figure = sub.add_parser("figure", help="reproduce one paper figure")
    figure.add_argument("figure_id", choices=sorted(FIGURES))

    simulate = sub.add_parser("simulate", help="run one scheduler once")
    simulate.add_argument(
        "--trace", choices=("cello", "financial"), default="cello"
    )
    simulate.add_argument(
        "--scheduler",
        choices=("static", "random", "heuristic", "wsc", "mwis"),
        default="heuristic",
    )
    simulate.add_argument("--replication", type=int, default=3)
    simulate.add_argument("--zipf", type=float, default=1.0)
    simulate.add_argument("--alpha", type=float, default=0.2)
    simulate.add_argument("--beta", type=float, default=100.0)
    simulate.add_argument(
        "--fault-rate",
        type=float,
        default=0.0,
        help="per-disk permanent failures per simulated second "
        "(0 disables fault injection)",
    )

    compare = sub.add_parser("compare", help="compare all schedulers")
    compare.add_argument(
        "--trace", choices=("cello", "financial"), default="cello"
    )
    compare.add_argument("--replication", type=int, default=3)

    headline = sub.add_parser(
        "headline", help="measure the paper's abstract claims"
    )
    headline.add_argument(
        "--trace", choices=("cello", "financial"), default="cello"
    )

    bench = sub.add_parser(
        "bench",
        help="run a figure/ablation sweep and write BENCH_<id>.json",
    )
    bench.add_argument(
        "bench_id",
        nargs="?",
        default=None,
        help="a figure id (fig5..fig17), 'headline', 'fault_sweep', an "
        "ablation_* id, 'all', or 'list' (omit with --validate)",
    )
    bench.add_argument("--scale", type=float, default=None)
    bench.add_argument("--mwis-scale", type=float, default=None)
    bench.add_argument("--seed", type=int, default=None)
    bench.add_argument(
        "--jobs", type=int, default=1, help="process-pool workers"
    )
    bench.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the persistent run cache for this invocation",
    )
    bench.add_argument("--output-dir", default=".")
    bench.add_argument(
        "--validate",
        metavar="FILE",
        default=None,
        help="validate an existing BENCH_*.json instead of running",
    )

    lint = sub.add_parser(
        "lint", help="run reprolint (domain-aware static analysis)"
    )
    add_lint_arguments(lint)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    try:
        if args.command == "profile":
            return _run_profile(args)
        elif args.command == "figure":
            _print_figure(args.figure_id)
        elif args.command == "simulate":
            _run_simulate(args)
        elif args.command == "compare":
            _run_compare(args)
        elif args.command == "headline":
            print(headline_claims(args.trace).render())
        elif args.command == "bench":
            return _run_bench(args)
        elif args.command == "lint":
            return run_lint_args(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return 0


def _print_figure(figure_id: str) -> None:
    result = run_figure(figure_id)
    if isinstance(result, str):
        print(result)
    elif isinstance(result, dict):
        for panel in result.values():
            print(panel.render())
            print()
    elif isinstance(result, tuple):
        for part in result:
            print(part.render())
            print()
    else:
        print(result.render())


def _run_profile(args: argparse.Namespace) -> int:
    """Power-profile names print the profile; bench ids run cProfile."""
    if args.name in PROFILES:
        print(get_profile(args.name).describe())
        return 0
    # Imported lazily: pulls in the full harness import graph.
    from repro.perf.benchprof import profile_bench

    print(
        profile_bench(
            args.name,
            scale=args.scale,
            seed=args.seed,
            top=args.top,
            sort=args.sort,
        )
    )
    return 0


def _run_bench(args: argparse.Namespace) -> int:
    # Imported lazily: the bench module sits above the figure modules in
    # the import graph and is only needed by this subcommand.
    from repro.experiments.harness import bench as bench_mod
    from repro.experiments.harness.cache import RunCache
    from repro.experiments.harness.schema import validate_bench_file

    if args.validate is not None:
        violations = validate_bench_file(args.validate)
        if violations:
            for violation in violations:
                print(f"schema violation: {violation}", file=sys.stderr)
            return 1
        print(f"{args.validate}: valid bench document")
        return 0

    if args.bench_id is None:
        print(
            "error: bench_id is required unless --validate is given",
            file=sys.stderr,
        )
        return 2
    if args.bench_id == "list":
        for bench_id, definition in bench_mod.BENCHES.items():
            print(f"{bench_id:26s} {definition.description}")
        return 0

    cache = RunCache(enabled=False) if args.no_cache else None
    kwargs = dict(
        scale=args.scale,
        mwis_scale=args.mwis_scale,
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
        output_dir=args.output_dir,
    )
    if args.bench_id == "all":
        for path in bench_mod.run_all(**kwargs):
            print(f"wrote {path}")
        return 0
    payload, path = bench_mod.run_bench(args.bench_id, **kwargs)
    cache_stats = payload["cache"]
    print(f"wrote {path}")
    print(
        f"wall {payload['wall_clock_s']:.2f}s  "
        f"events {payload['events_processed']}  "
        f"({payload['events_per_sec']:.0f}/s)  "
        f"cache {cache_stats['hits']}/{cache_stats['hits'] + cache_stats['misses']}"
        f" hits ({cache_stats['hit_rate']:.0%})"
    )
    return 0


def _run_simulate(args: argparse.Namespace) -> None:
    result = common.run_cell(
        args.trace,
        args.replication,
        args.scheduler,
        zipf_exponent=args.zipf,
        alpha=args.alpha,
        beta=args.beta,
        fault_rate=args.fault_rate,
    )
    print(result.report.summary())
    print(f"normalized energy    : {result.normalized_energy:.3f} (vs always-on)")


def _run_compare(args: argparse.Namespace) -> None:
    rows = []
    for key in ("static", "random", "heuristic", "wsc", "mwis"):
        result = common.run_cell(args.trace, args.replication, key)
        rows.append(
            [
                common.SCHEDULER_LABELS[key],
                f"{result.normalized_energy:.3f}",
                result.spin_operations,
                f"{result.mean_response_time * 1000:.0f}"
                if result.report.response_times
                else "n/a",
            ]
        )
    print(
        format_table(
            ["scheduler", "energy (norm.)", "spin ops", "mean resp (ms)"],
            rows,
            title=f"{args.trace} trace, replication {args.replication}",
        )
    )


if __name__ == "__main__":
    sys.exit(main())
