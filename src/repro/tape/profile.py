"""Tape drive power/geometry profiles.

A :class:`TapePowerProfile` is the tape analogue of
:class:`~repro.power.profile.DiskPowerProfile`: per-state powers plus the
transition costs, extended with the linear-medium geometry (tape length,
wind speed, streaming rate) that turns a seek *distance* into time and
energy — the quantity the Linear Tape Scheduling Problem minimises.

:data:`LTO_GEN8` carries LTO-8-class numbers assembled from public
datasheets (12 TB native, ~960 m of tape, ~360 MB/s native streaming,
high-speed search around 8 m/s, mount/thread times in the tens of
seconds). :data:`TAPE_UNIT` is a unit-cost teaching model in the spirit
of the paper's Section 2.3 disk model: 1 W everywhere interesting,
1 m/s wind speed, instant mounts — seek distance and seek energy
coincide, which makes sequencer behaviour directly readable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.tape.states import TapePowerState


@dataclass(frozen=True)
class TapePowerProfile:
    """Electrical + geometric model of one tape drive.

    Attributes:
        name: Human-readable identifier used in reports.
        unmounted_power: Watts with no cartridge loaded (shelf power).
        loaded_power: Watts with a cartridge threaded and reels stopped.
        seek_power: Watts while winding the tape (high-speed search).
        read_power: Watts while streaming data under the head.
        mount_power: Average watts drawn during a cartridge mount.
        unmount_power: Average watts drawn during an unmount (incl. the
            rewind to the start of the tape).
        mount_time: Seconds to load and thread a cartridge.
        unmount_time: Seconds to rewind and eject a cartridge.
        seek_speed: Longitudinal wind speed in metres/second.
        read_rate: Streaming throughput in bytes/second.
        tape_length: Usable tape length in metres.
        mount_breakeven_override: Optional explicit mount-breakeven
            threshold in seconds; when ``None`` the 2-competitive
            analogue ``(mount + unmount energy) / loaded power`` is used.
    """

    name: str
    unmounted_power: float
    loaded_power: float
    seek_power: float
    read_power: float
    mount_power: float
    unmount_power: float
    mount_time: float
    unmount_time: float
    seek_speed: float
    read_rate: float
    tape_length: float
    mount_breakeven_override: Optional[float] = None

    def __post_init__(self) -> None:
        for field_name in (
            "unmounted_power",
            "loaded_power",
            "seek_power",
            "read_power",
            "mount_power",
            "unmount_power",
            "mount_time",
            "unmount_time",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigurationError(f"{field_name} must be >= 0, got {value}")
        for field_name in ("seek_speed", "read_rate", "tape_length"):
            value = getattr(self, field_name)
            if value <= 0:
                raise ConfigurationError(f"{field_name} must be > 0, got {value}")
        if self.loaded_power == 0 and self.mount_breakeven_override is None:
            raise ConfigurationError(
                "loaded_power == 0 requires an explicit mount_breakeven_override"
            )
        if (
            self.mount_breakeven_override is not None
            and self.mount_breakeven_override < 0
        ):
            raise ConfigurationError("mount_breakeven_override must be >= 0")

    @property
    def mount_energy(self) -> float:
        """Joules to load and thread a cartridge."""
        return self.mount_power * self.mount_time

    @property
    def unmount_energy(self) -> float:
        """Joules to rewind and eject a cartridge."""
        return self.unmount_power * self.unmount_time

    @property
    def remount_energy(self) -> float:
        """Joules of a full unmount + mount round trip."""
        return self.mount_energy + self.unmount_energy

    @property
    def transition_time(self) -> float:
        """Mount + unmount seconds (the tape analogue of Tup + Tdown)."""
        return self.mount_time + self.unmount_time

    @property
    def mount_breakeven_time(self) -> float:
        """The 2-competitive unmount threshold in seconds.

        Keeping the cartridge loaded costs ``loaded_power`` watts; an
        unmount/remount round trip costs ``remount_energy`` joules. The
        breakeven idle period equates the two — exactly the disk model's
        ``TB`` with mount costs in place of spin costs.
        """
        if self.mount_breakeven_override is not None:
            return self.mount_breakeven_override
        return self.remount_energy / self.loaded_power

    @property
    def full_wind_time(self) -> float:
        """Seconds to wind end-to-end (the worst-case single seek)."""
        return self.tape_length / self.seek_speed

    def seek_time(self, distance: float) -> float:
        """Seconds to wind ``distance`` metres (constant-speed model)."""
        if distance < 0:
            raise ConfigurationError(f"seek distance must be >= 0, got {distance}")
        return distance / self.seek_speed

    def read_time(self, size_bytes: int) -> float:
        """Seconds to stream ``size_bytes`` at the native rate."""
        if size_bytes < 0:
            raise ConfigurationError(f"size_bytes must be >= 0, got {size_bytes}")
        return size_bytes / self.read_rate

    def power(self, state: TapePowerState) -> float:
        """Steady-state watts drawn in ``state``."""
        return _POWER_FIELD_BY_STATE[state](self)

    def state_powers(self) -> Dict[TapePowerState, float]:
        """Mapping of every state to its steady-state power in watts."""
        return {state: self.power(state) for state in TapePowerState}

    def with_overrides(self, **changes: float) -> "TapePowerProfile":
        """Copy of this profile with selected fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Multi-line human-readable summary (watts/seconds/metres)."""
        lines = [
            f"tape profile: {self.name}",
            f"  unmounted power        : {self.unmounted_power:.2f} W",
            f"  loaded power           : {self.loaded_power:.2f} W",
            f"  seek / read power      : {self.seek_power:.1f} W / "
            f"{self.read_power:.1f} W",
            f"  mount                  : {self.mount_time:.1f} s @ "
            f"{self.mount_power:.1f} W = {self.mount_energy:.1f} J",
            f"  unmount                : {self.unmount_time:.1f} s @ "
            f"{self.unmount_power:.1f} W = {self.unmount_energy:.1f} J",
            f"  mount breakeven        : {self.mount_breakeven_time:.2f} s",
            f"  tape length            : {self.tape_length:.0f} m @ "
            f"{self.seek_speed:.1f} m/s wind",
            f"  full wind              : {self.full_wind_time:.1f} s",
        ]
        return "\n".join(lines)


_POWER_FIELD_BY_STATE = {
    TapePowerState.UNMOUNTED: lambda p: p.unmounted_power,
    TapePowerState.MOUNTING: lambda p: p.mount_power,
    TapePowerState.LOADED: lambda p: p.loaded_power,
    TapePowerState.SEEKING: lambda p: p.seek_power,
    TapePowerState.READING: lambda p: p.read_power,
    TapePowerState.UNMOUNTING: lambda p: p.unmount_power,
}


#: LTO-8-class drive: ~960 m of tape, ~360 MB/s native streaming,
#: high-speed search around 8 m/s, and powers in the band public LTO
#: datasheets quote (a few watts threaded-idle, high twenties winding).
#: Mount breakeven works out to ~61 s.
LTO_GEN8 = TapePowerProfile(
    name="lto-gen8",
    unmounted_power=1.0,
    loaded_power=6.9,
    seek_power=27.0,
    read_power=27.0,
    mount_power=12.0,
    unmount_power=12.0,
    mount_time=20.0,
    unmount_time=15.0,
    seek_speed=8.0,
    read_rate=360e6,
    tape_length=960.0,
)

#: Unit-cost teaching model: 1 W in every mounted state, 1 m/s wind, a
#: 100 m tape, instant free mounts, breakeven fixed at 10 s. Seek time,
#: seek distance and seek energy coincide numerically, so sequencer
#: behaviour is directly readable in unit tests.
TAPE_UNIT = TapePowerProfile(
    name="tape-unit-model",
    unmounted_power=0.0,
    loaded_power=1.0,
    seek_power=1.0,
    read_power=1.0,
    mount_power=0.0,
    unmount_power=0.0,
    mount_time=0.0,
    unmount_time=0.0,
    seek_speed=1.0,
    read_rate=1e9,
    tape_length=100.0,
    mount_breakeven_override=10.0,
)

TAPE_PROFILES: Dict[str, TapePowerProfile] = {
    profile.name: profile for profile in (LTO_GEN8, TAPE_UNIT)
}


def get_tape_profile(name: str) -> TapePowerProfile:
    """Look up a built-in tape profile by name.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    try:
        return TAPE_PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(TAPE_PROFILES))
        raise ConfigurationError(
            f"unknown tape profile {name!r}; known: {known}"
        )
