"""LTSP request sequencers: orderings over positions on a linear medium.

On tape, *sequencing* dominates cost: every request lives at a fixed
longitudinal position, the head winds at constant speed, and the order
requests are served in decides both total seek distance (energy) and
per-request latency. This is the Linear Tape Scheduling Problem of
arXiv:1810.09005 / arXiv:2112.07018, restricted here to the batch form
the drive actually faces: given the head position and the pending
requests' positions, emit a service order.

A sequencer is a pure function — ``plan(head_position_m, positions)``
returns a permutation of ``range(len(positions))`` — which keeps the
policies unit-testable (and property-testable) without a drive or an
engine. Three families are registered:

* ``fifo`` — arrival order; the baseline every policy is guarded
  against.
* ``nearest`` — greedy nearest-neighbour. On a line the unserved point
  closest to the head is always one of the two sorted neighbours of the
  served interval, so the greedy walk is a two-pointer sweep.
* ``scan`` — the elevator: sweep away from the start of the tape, then
  back. One direction reversal bounds the travel at twice the pending
  window.
* ``ltsp`` — the approximate LTSP policy: per batch it *exactly*
  minimises the total completion time via the classic
  minimum-latency-on-a-path interval dynamic program (O(n²)); across
  batches it remains an online approximation, which is the regime
  arXiv:2112.07018 studies. Above :data:`LTSP_DP_CUTOFF` pending
  requests it falls back to the nearest-neighbour order.

Every non-FIFO plan passes through a no-worse-than-FIFO guard on total
seek distance: greedy orders are *not* universally better than arrival
order (a head flanked by two near-equidistant clusters is a
counterexample), so the base class compares and keeps whichever order
winds less tape. The guard is what makes the bench's "never worse than
FIFO" property true by construction rather than true on average.
"""

from __future__ import annotations

from bisect import bisect_left, insort
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SchedulingError

#: Pending-request count above which the ``ltsp`` policy's O(n²) dynamic
#: program yields to the nearest-neighbour order (saturated batches).
LTSP_DP_CUTOFF = 256


def total_seek_distance(
    head_position_m: float,
    positions: Sequence[float],
    order: Optional[Sequence[int]] = None,
) -> float:
    """Metres of tape wound serving ``positions`` in ``order``.

    ``order`` defaults to FIFO (the sequence as given). The head starts
    at ``head_position_m`` and visits each position in turn.
    """
    head = head_position_m
    distance = 0.0
    if order is None:
        for position in positions:
            distance += abs(position - head)
            head = position
    else:
        for index in order:
            position = positions[index]
            distance += abs(position - head)
            head = position
    return distance


class TapeSequencer:
    """Base sequencer: permutation contract + no-worse-than-FIFO guard."""

    #: Registry key; subclasses override.
    name = "base"

    def plan(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        """Service order over ``positions``, as indices.

        Args:
            head_position_m: Current head position in metres.
            positions: Pending requests' tape positions in metres,
                arrival (FIFO) order.

        Returns:
            A permutation of ``range(len(positions))``. Guaranteed to
            wind no more tape than serving in FIFO order.
        """
        count = len(positions)
        if count <= 1:
            return list(range(count))
        order = self._order(head_position_m, positions)
        if len(order) != count or set(order) != set(range(count)):
            raise SchedulingError(
                f"sequencer {self.name!r} returned {order!r}, not a "
                f"permutation of range({count})"
            )
        planned = total_seek_distance(head_position_m, positions, order)
        fifo = total_seek_distance(head_position_m, positions)
        if planned > fifo:
            return list(range(count))
        return order

    def _order(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        raise NotImplementedError


class FifoSequencer(TapeSequencer):
    """Arrival order — the sequencing baseline."""

    name = "fifo"

    def _order(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        return list(range(len(positions)))


class NearestSequencer(TapeSequencer):
    """Greedy nearest-neighbour, as a two-pointer sweep over sorted
    positions.

    On a line the unserved position nearest the head is always adjacent
    (in sorted order) to the already-served interval, so the greedy walk
    reduces to comparing the next candidate on each side. Distance ties
    break toward the start of the tape; equal positions are served in
    arrival order.
    """

    name = "nearest"

    def _order(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        ranked = sorted(range(len(positions)), key=lambda i: (positions[i], i))
        ranked_positions = [positions[i] for i in ranked]
        # Left pointer walks down from the head, right pointer walks up.
        left = bisect_left(ranked_positions, head_position_m) - 1
        right = left + 1
        head = head_position_m
        order: List[int] = []
        while left >= 0 or right < len(ranked):
            if left < 0:
                pick_left = False
            elif right >= len(ranked):
                pick_left = True
            else:
                pick_left = (
                    head - positions[ranked[left]]
                    <= positions[ranked[right]] - head
                )
            if pick_left:
                index = ranked[left]
                left -= 1
            else:
                index = ranked[right]
                right += 1
            order.append(index)
            head = positions[index]
        return order


class ScanSequencer(TapeSequencer):
    """Elevator sweep: up from the head to the far end, then back down.

    Popular data sits near the start of the tape (the layout packs it
    there), so sweeping away first and returning leaves the head low,
    near the likely next batch.
    """

    name = "scan"

    def _order(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        upward = sorted(
            (i for i, p in enumerate(positions) if p >= head_position_m),
            key=lambda i: (positions[i], i),
        )
        downward = sorted(
            (i for i, p in enumerate(positions) if p < head_position_m),
            key=lambda i: (-positions[i], i),
        )
        return upward + downward


class LtspSequencer(TapeSequencer):
    """Approximate LTSP: exact minimum-latency order per batch.

    Serving order on a line that minimises the *sum of completion
    times* is the minimum-latency problem on a path: the served set is
    always a contiguous interval of sorted positions containing the
    start, so a state is (interval, which end the head is at) and each
    expansion delays every unserved request by the distance moved. The
    interval dynamic program evaluates all O(n²) states exactly —
    arXiv:2112.07018's observation is that solving each *batch* exactly
    is still only approximate for the online problem, which is the
    guarantee offered here. Batches above :data:`LTSP_DP_CUTOFF`
    requests use the nearest-neighbour order instead (the DP is
    quadratic; saturated queues would stall the simulation).
    """

    name = "ltsp"

    def __init__(self, dp_cutoff: int = LTSP_DP_CUTOFF):
        if dp_cutoff < 0:
            raise ConfigurationError("dp_cutoff must be >= 0")
        self._dp_cutoff = dp_cutoff
        self._nearest = NearestSequencer()

    def _order(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        if len(positions) > self._dp_cutoff:
            return self._nearest._order(head_position_m, positions)
        return self._dp_order(head_position_m, positions)

    def _dp_order(
        self, head_position_m: float, positions: Sequence[float]
    ) -> List[int]:
        # Group duplicate positions: one DP point per distinct position,
        # weighted by its request count; requests at a point are served
        # back-to-back in arrival order at zero extra travel.
        by_position: Dict[float, List[int]] = {}
        points: List[float] = []
        for index, position in enumerate(positions):
            members = by_position.get(position)
            if members is None:
                by_position[position] = [index]
                insort(points, position)
            else:
                members.append(index)
        # The head joins as a zero-weight virtual point so the interval
        # always contains the start. If the head sits exactly on a
        # request's position the virtual point is a zero-distance twin —
        # the real point is served on the first (free) expansion.
        start = bisect_left(points, head_position_m)
        points.insert(start, head_position_m)
        count = len(points)
        weights = [
            0 if i == start else len(by_position[p])
            for i, p in enumerate(points)
        ]
        prefix = [0] * (count + 1)
        for i, weight in enumerate(weights):
            prefix[i + 1] = prefix[i] + weight
        total_weight = prefix[count]

        # cost[i][j][side]: minimum remaining weighted latency once the
        # sorted interval [i, j] is served with the head at points[i]
        # (side 0) or points[j] (side 1). Expanding by one point moves
        # the head d metres and delays all requests outside [i, j].
        infinity = float("inf")
        cost = [
            [[0.0, 0.0] for _j in range(count)] for _i in range(count)
        ]
        choice = [
            [[0, 0] for _j in range(count)] for _i in range(count)
        ]
        for span in range(count - 2, -1, -1):
            for i in range(count - span):
                j = i + span
                if not (i <= start <= j):
                    continue
                remaining = total_weight - (prefix[j + 1] - prefix[i])
                for side in (0, 1):
                    at = points[i] if side == 0 else points[j]
                    best = infinity
                    best_move = 0
                    if i > 0:
                        extend = (at - points[i - 1]) * remaining + cost[
                            i - 1
                        ][j][0]
                        if extend < best:
                            best = extend
                            best_move = -1
                    if j < count - 1:
                        extend = (points[j + 1] - at) * remaining + cost[i][
                            j + 1
                        ][1]
                        if extend < best:
                            best = extend
                            best_move = 1
                    cost[i][j][side] = best
                    choice[i][j][side] = best_move

        # Recover the visiting order by replaying the stored choices.
        order: List[int] = []
        i = j = start
        side = 0
        while i > 0 or j < count - 1:
            move = choice[i][j][side]
            if move == -1:
                i -= 1
                side = 0
                order.extend(by_position[points[i]])
            else:
                j += 1
                side = 1
                order.extend(by_position[points[j]])
        return order


SequencerFactory = Callable[[], TapeSequencer]

SEQUENCER_FACTORIES: Dict[str, SequencerFactory] = {}


def register_sequencer(name: str, factory: SequencerFactory) -> None:
    """Add a sequencer family to the registry (names must be unique)."""
    if name in SEQUENCER_FACTORIES:
        raise ConfigurationError(f"sequencer {name!r} already registered")
    SEQUENCER_FACTORIES[name] = factory


def make_sequencer(name: str) -> TapeSequencer:
    """Instantiate a registered sequencer by name.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    try:
        factory = SEQUENCER_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(SEQUENCER_FACTORIES))
        raise ConfigurationError(
            f"unknown tape sequencer {name!r}; known: {known}"
        )
    return factory()


def sequencer_names() -> Tuple[str, ...]:
    """Registered sequencer names, sorted."""
    return tuple(sorted(SEQUENCER_FACTORIES))


register_sequencer("fifo", FifoSequencer)
register_sequencer("nearest", NearestSequencer)
register_sequencer("scan", ScanSequencer)
register_sequencer("ltsp", LtspSequencer)
