"""Tape drive power states.

The linear-tape analogue of :mod:`repro.power.states`. A tape drive has
no platters to spin; its expensive transition is the cartridge mount
(load + thread the tape) and the costly steady states are the wind
states, where the reels move the medium under the head:

* ``UNMOUNTED`` — no cartridge loaded; the drive idles at shelf power.
* ``MOUNTING`` / ``UNMOUNTING`` — cartridge load/eject transitions,
  taking seconds and acting like the disk model's spin-up/spin-down
  (the unmount includes the rewind to the start of the tape).
* ``LOADED`` — cartridge threaded, reels stopped, head parked at its
  current longitudinal position.
* ``SEEKING`` — winding the tape to a target position (the LTSP cost:
  time and energy proportional to the distance wound).
* ``READING`` — streaming data under the head.
"""

from __future__ import annotations

from enum import Enum


class TapePowerState(Enum):
    """Power state of a simulated tape drive."""

    UNMOUNTED = "unmounted"
    MOUNTING = "mounting"
    LOADED = "loaded"
    SEEKING = "seeking"
    READING = "reading"
    UNMOUNTING = "unmounting"

    # Same rationale as DiskPowerState: members are per-process
    # singletons, so the C-level identity hash replaces Enum's
    # Python-level name hash on the per-transition ledger updates.
    __hash__ = object.__hash__  # type: ignore[assignment]

    @property
    def is_mounted(self) -> bool:
        """True when a cartridge is threaded and the head can move."""
        return self in (
            TapePowerState.LOADED,
            TapePowerState.SEEKING,
            TapePowerState.READING,
        )

    @property
    def is_transitioning(self) -> bool:
        """True during a cartridge mount or unmount."""
        return self in (TapePowerState.MOUNTING, TapePowerState.UNMOUNTING)


#: Canonical ordering used by reports (mirrors ``STATE_ORDER`` for disks).
TAPE_STATE_ORDER = (
    TapePowerState.UNMOUNTED,
    TapePowerState.LOADED,
    TapePowerState.SEEKING,
    TapePowerState.READING,
    TapePowerState.MOUNTING,
    TapePowerState.UNMOUNTING,
)
