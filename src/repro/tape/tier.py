"""Tiered storage: hot replicas on disk, cold replicas on tape.

:class:`TieredStorageSystem` embeds the disk-only
:class:`~repro.sim.storage.StorageSystem` unchanged and adds a cold tier
of :class:`~repro.tape.drive.TapeDrive` instances on the same virtual
clock. Per arrival it routes by data-id temperature:

* **hot** ids (an LRU set of the most popular ids, capacity
  ``ceil(hot_fraction × num_ids)``) go to the disk tier through the
  exact same admission path a disk-only run uses — scheduler choice,
  placement checks, fused fast paths and all;
* **cold** ids go to the tape drive holding their cartridge, at the
  position assigned by the popularity-ranked
  :class:`~repro.tape.layout.TapeLayout`.

The hot set is seeded from the trace's empirical popularity (most
requested first — the same oracle-placement liberty the paper takes for
its Zipf layouts) and, when ``promote_on_access`` is set, adapts online:
a completed tape read promotes its id into the hot set, evicting the
least recently used hot id back to the cold set. Data movement itself is
not simulated — every id permanently owns both a disk placement and a
tape position, and the tier decides only *routing* — so migration costs
appear as the mount/wind work of serving cold requests, not as a
separate copy workload.

Determinism: routing state is pure function of the (sorted) request
sequence, the tape drives use no randomness, and the disk tier runs the
byte-identical disk-only code, so same-seed tiered runs reproduce
exactly.
"""

from __future__ import annotations

import gc
from collections import OrderedDict
from math import ceil
from typing import Dict, List, Optional, Sequence

from repro.core.scheduler import Scheduler
from repro.errors import ConfigurationError, SimulationError
from repro.placement.catalog import PlacementCatalog
from repro.report import SimulationReport, TapeTierReport
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.sim.metrics import MetricsRegistry
from repro.sim.storage import _REQUEST_ORDER, StorageSystem
from repro.tape.config import TierConfig
from repro.tape.drive import TapeDrive
from repro.tape.layout import TapeLayout
from repro.tape.sequencer import make_sequencer
from repro.tape.states import TAPE_STATE_ORDER
from repro.types import DataId, Request


class TieredStorageSystem:
    """One tiered disk+tape storage system instance (single-use)."""

    def __init__(
        self,
        catalog: PlacementCatalog,
        scheduler: Scheduler,
        config: SimulationConfig,
    ):
        tier = config.tier
        if tier is None:
            raise ConfigurationError(
                "TieredStorageSystem needs config.tier; disk-only runs "
                "use StorageSystem"
            )
        if config.fault_plan is not None and config.fault_plan.active:
            raise ConfigurationError(
                "fault injection is not supported on tiered runs yet"
            )
        self._config = config
        self._tier = tier
        self._engine = SimulationEngine()
        #: The embedded disk tier — also the scheduler's SystemView.
        self.disk_tier = StorageSystem(
            catalog, scheduler, config, engine=self._engine
        )
        self._scheduler = scheduler
        self._metrics = self.disk_tier.metrics
        self._disk_admit = self.disk_tier.arrival_handler()
        #: Live tape metrics (per-request seek distance and energy
        #: histograms) — the drives' window into repro.sim.metrics.
        self.registry = MetricsRegistry()
        self._drives: List[TapeDrive] = [
            TapeDrive(
                drive_id=index,
                engine=self._engine,
                profile=tier.tape_profile,
                sequencer=make_sequencer(tier.sequencer),
                on_complete=self._on_tape_complete,
                completion_id=config.num_disks + index,
                registry=self.registry,
            )
            for index in range(tier.num_tape_drives)
        ]
        self._all_ids = sorted(catalog.mapping())
        self._hot: "OrderedDict[DataId, None]" = OrderedDict()
        self._hot_capacity = 0
        self._drive_of: Dict[DataId, int] = {}
        self._position_of: Dict[DataId, float] = {}
        self._requests_to_disk = 0
        self._requests_to_tape = 0
        self._promotions = 0
        self._demotions = 0
        self._tape_response_times: List[float] = []
        self._offered = 0
        self._ran = False

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def _prepare_placement(self, ordered: Sequence[Request]) -> None:
        """Rank ids by trace popularity; seed hot set and tape layouts."""
        counts: Dict[DataId, int] = {}
        for request in ordered:
            counts[request.data_id] = counts.get(request.data_id, 0) + 1
        ranked = sorted(
            self._all_ids, key=lambda data_id: (-counts.get(data_id, 0), data_id)
        )
        self._hot_capacity = ceil(self._tier.hot_fraction * len(ranked))
        # LRU order: least popular hot id first, so it is evicted first.
        for data_id in reversed(ranked[: self._hot_capacity]):
            self._hot[data_id] = None
        # Every id owns a tape position (promotion/demotion is pure
        # routing): stripe the full popularity ranking across the
        # drives, then lay each drive's cartridge out by Zipf mass.
        num_drives = self._tier.num_tape_drives
        profile = self._tier.tape_profile
        for drive_index in range(num_drives):
            cartridge_ids = ranked[drive_index::num_drives]
            layout = TapeLayout.from_ranked_ids(
                cartridge_ids,
                profile.tape_length,
                self._tier.layout_exponent,
            )
            for data_id in cartridge_ids:
                self._drive_of[data_id] = drive_index
                self._position_of[data_id] = layout.position(data_id)

    # ------------------------------------------------------------------
    # event handlers
    # ------------------------------------------------------------------

    def _on_arrival(self, request: Request) -> None:
        data_id = request.data_id
        hot = self._hot
        if data_id in hot:
            hot.move_to_end(data_id)
            self._requests_to_disk += 1
            self._disk_admit(request)
            return
        self._requests_to_tape += 1
        self._drives[self._drive_of[data_id]].submit(
            request, self._position_of[data_id]
        )

    def _on_tape_complete(
        self, request: Request, completion_id: int, now: float
    ) -> None:
        self._metrics.on_complete(request, completion_id, now)
        self._tape_response_times.append(now - request.time)
        if not self._tier.promote_on_access:
            return
        hot = self._hot
        data_id = request.data_id
        if data_id in hot:
            # A burst of requests for one cold id: the first completion
            # already promoted it.
            hot.move_to_end(data_id)
            return
        hot[data_id] = None
        self._promotions += 1
        if len(hot) > self._hot_capacity:
            hot.popitem(last=False)
            self._demotions += 1

    # ------------------------------------------------------------------
    # driving the run
    # ------------------------------------------------------------------

    def run(self, requests: Sequence[Request]) -> SimulationReport:
        """Replay ``requests`` through both tiers; return the report."""
        if self._ran:
            raise SimulationError(
                "TieredStorageSystem instances are single-use"
            )
        self._ran = True
        ordered = sorted(requests, key=_REQUEST_ORDER)
        self._offered = len(ordered)
        self._prepare_placement(ordered)
        last_arrival = ordered[-1].time if ordered else 0.0
        horizon = self._config.derived_horizon(last_arrival)
        if self._config.horizon is None:
            # Tape work drains slowly (a cold batch can imply a mount
            # plus a near-full wind); grant the cold tier its slack.
            horizon += self._tier.drain_horizon_slack
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._engine.run(
                until=horizon,
                arrivals=(
                    [request.time for request in ordered],
                    ordered,
                    self._on_arrival,
                ),
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        self.disk_tier.finalize_disks()
        for drive in self._drives:
            drive.finalize()
        return self._build_report()

    def _build_report(self) -> SimulationReport:
        disk_tier = self.disk_tier
        disk_stats = {
            disk_id: disk_tier.disk(disk_id).stats
            for disk_id in disk_tier.disk_ids
        }
        disk_energy = sum(stats.energy for stats in disk_stats.values())
        tape_energy = sum(drive.stats.energy for drive in self._drives)
        state_time_s: Dict[str, float] = {}
        for state in sorted(TAPE_STATE_ORDER, key=lambda s: s.value):
            state_time_s[state.value] = sum(
                drive.stats.state_time[state] for drive in self._drives
            )
        tape = TapeTierReport(
            sequencer=self._tier.sequencer,
            profile_name=self._tier.tape_profile.name,
            num_drives=self._tier.num_tape_drives,
            hot_capacity=self._hot_capacity,
            requests_to_disk=self._requests_to_disk,
            requests_to_tape=self._requests_to_tape,
            tape_requests_completed=len(self._tape_response_times),
            promotions=self._promotions,
            demotions=self._demotions,
            mounts=sum(drive.stats.mounts for drive in self._drives),
            unmounts=sum(drive.stats.unmounts for drive in self._drives),
            seek_distance_m=sum(
                drive.stats.seek_distance_m for drive in self._drives
            ),
            tape_energy=tape_energy,
            state_time_s=state_time_s,
            tape_response_times=tuple(self._tape_response_times),
        )
        cache = disk_tier.cache
        return SimulationReport(
            scheduler_name=(
                f"{self._scheduler.name}+tape-{self._tier.sequencer}"
            ),
            duration=self._engine.now,
            total_energy=disk_energy + tape_energy,
            disk_stats=disk_stats,
            response_times=self._metrics.response_times,
            requests_offered=self._offered,
            requests_completed=self._metrics.completed,
            cache_hits=cache.hits if cache else 0,
            cache_misses=cache.misses if cache else 0,
            events_processed=self._engine.events_processed,
            availability=None,
            tape=tape,
        )

    # ------------------------------------------------------------------
    # introspection (tests)
    # ------------------------------------------------------------------

    @property
    def hot_ids(self) -> List[DataId]:
        """Current hot set, least recently used first."""
        return list(self._hot)

    def drive(self, drive_index: int) -> TapeDrive:
        """Live view of one tape drive."""
        return self._drives[drive_index]

    def tape_position(self, data_id: DataId) -> Optional[float]:
        """The id's tape position in metres (None before :meth:`run`)."""
        return self._position_of.get(data_id)
