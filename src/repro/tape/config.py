"""Tiered disk/tape configuration.

:class:`TierConfig` is the tape/tier axis of
:class:`~repro.sim.config.SimulationConfig`: attaching one turns a
disk-only run into a tiered run (hot data on disk, cold data on tape)
routed by :class:`~repro.tape.tier.TieredStorageSystem`. The default of
``None`` on ``SimulationConfig.tier`` keeps every existing disk-only
run byte-identical — the tier axis is strictly additive.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.tape.profile import LTO_GEN8, TapePowerProfile
from repro.tape.sequencer import SEQUENCER_FACTORIES


def _default_tape_profile() -> TapePowerProfile:
    return LTO_GEN8


@dataclass(frozen=True)
class TierConfig:
    """Everything about the cold tier of one tiered run.

    Attributes:
        hot_fraction: Fraction of distinct data ids (by popularity rank)
            whose requests are served from disk; the rest go to tape.
            ``1.0`` routes everything to disk — the all-disk reference
            cell the bench panels compare against.
        num_tape_drives: Tape drives in the cold tier; data ids are
            striped across them by popularity rank.
        sequencer: LTSP sequencer family name (see
            :mod:`repro.tape.sequencer`).
        tape_profile: Power/geometry model of every tape drive.
        promote_on_access: When True a completed tape read promotes its
            data id into the hot set (evicting the least recently used
            hot id down to tape); False freezes the initial split.
        layout_exponent: Zipf exponent shaping the on-tape layout
            (see :class:`~repro.tape.layout.TapeLayout`). Unitless.
        tape_drain_slack: Extra seconds of horizon granted beyond the
            disk-only horizon so in-flight tape work (a full wind plus a
            mount/unmount round trip) can drain.
    """

    hot_fraction: float = 0.25
    num_tape_drives: int = 1
    sequencer: str = "nearest"
    tape_profile: TapePowerProfile = field(
        default_factory=_default_tape_profile
    )
    promote_on_access: bool = True
    layout_exponent: float = 1.0
    tape_drain_slack: float = 60.0

    def __post_init__(self) -> None:
        if not 0.0 < self.hot_fraction <= 1.0:
            raise ConfigurationError(
                f"hot_fraction must be in (0, 1], got {self.hot_fraction}"
            )
        if self.num_tape_drives <= 0:
            raise ConfigurationError("num_tape_drives must be positive")
        if self.sequencer not in SEQUENCER_FACTORIES:
            known = ", ".join(sorted(SEQUENCER_FACTORIES))
            raise ConfigurationError(
                f"unknown tape sequencer {self.sequencer!r}; known: {known}"
            )
        if self.layout_exponent < 0:
            raise ConfigurationError("layout_exponent must be >= 0")
        if self.tape_drain_slack < 0:
            raise ConfigurationError("tape_drain_slack must be >= 0")

    @property
    def drain_horizon_slack(self) -> float:
        """Seconds of extra horizon the cold tier needs to drain: one
        mount/unmount round trip plus a full end-to-end wind, plus the
        configured slack."""
        profile = self.tape_profile
        return (
            profile.transition_time
            + profile.full_wind_time
            + self.tape_drain_slack
        )
