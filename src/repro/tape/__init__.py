"""Cold-tier linear-tape backend: device model, LTSP sequencing, tiering.

``repro.tape`` is the second storage backend next to :mod:`repro.disk`,
with a fundamentally different cost geometry: requests live at fixed
positions on a 1-D medium, service cost is position-dependent seek, and
*sequencing* (not just assignment) dominates energy and latency — the
Linear Tape Scheduling Problem (arXiv:1810.09005, arXiv:2112.07018).

Modules:

* :mod:`repro.tape.states` / :mod:`repro.tape.profile` — the tape power
  model (mount/unmount transitions, wind states, LTO-class numbers).
* :mod:`repro.tape.sequencer` — the LTSP policy registry (``fifo``,
  ``nearest``, ``scan``, ``ltsp``), pure batch planners.
* :mod:`repro.tape.layout` — popularity-ranked on-tape data placement.
* :mod:`repro.tape.stats` — the per-drive time/energy/seek ledger.
* :mod:`repro.tape.config` — the :class:`TierConfig` axis attached to
  :class:`~repro.sim.config.SimulationConfig`.
* :mod:`repro.tape.drive` — the :class:`TapeDrive` device model (import
  it directly; it pulls in the simulation engine).
* :mod:`repro.tape.tier` — the tiered disk+tape storage system (import
  it directly; it pulls in :mod:`repro.sim.storage`).

``drive`` and ``tier`` are deliberately *not* imported here: this
package's ``__init__`` must stay importable from
:mod:`repro.sim.config` (which imports :class:`TierConfig`) without
circling back into :mod:`repro.sim`.
"""

from repro.tape.config import TierConfig
from repro.tape.layout import TapeLayout
from repro.tape.profile import (
    LTO_GEN8,
    TAPE_PROFILES,
    TAPE_UNIT,
    TapePowerProfile,
    get_tape_profile,
)
from repro.tape.sequencer import (
    SEQUENCER_FACTORIES,
    TapeSequencer,
    make_sequencer,
    sequencer_names,
    total_seek_distance,
)
from repro.tape.states import TAPE_STATE_ORDER, TapePowerState
from repro.tape.stats import TapeStats

__all__ = [
    "LTO_GEN8",
    "SEQUENCER_FACTORIES",
    "TAPE_PROFILES",
    "TAPE_STATE_ORDER",
    "TAPE_UNIT",
    "TapeLayout",
    "TapePowerProfile",
    "TapePowerState",
    "TapeSequencer",
    "TapeStats",
    "TierConfig",
    "get_tape_profile",
    "make_sequencer",
    "sequencer_names",
    "total_seek_distance",
]
