"""Simulated tape drive: pending queue + mount state machine + seek model.

One :class:`TapeDrive` is the cold-tier counterpart of
:class:`~repro.disk.drive.SimulatedDisk`:

* requests queue while the drive mounts, winds or streams; when the
  drive is free the whole pending queue is handed to the configured
  :class:`~repro.tape.sequencer.TapeSequencer`, which plans the batch's
  service order (the LTSP decision),
* a six-state power machine (unmounted / mounting / loaded / seeking /
  reading / unmounting) driven by the shared
  :class:`~repro.sim.engine.SimulationEngine`,
* the 2CPM analogue for mounts: an idle LOADED drive arms a
  mount-breakeven timer and unmounts (rewinding to the start of the
  tape) when it fires, and
* a :class:`~repro.tape.stats.TapeStats` ledger integrating time,
  energy and wound metres, plus optional per-request seek-distance and
  energy histograms in a :class:`~repro.sim.metrics.MetricsRegistry`.

Plan-per-busy-period semantics: the sequencer plans over the requests
pending when the drive comes free; requests arriving mid-batch wait for
the next planning round. This keeps every plan a pure function of
(head position, pending positions) — the same contract the property
tests exercise — and keeps runs deterministic.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.sim.engine import ReusableTimer, SimulationEngine
from repro.sim.metrics import Histogram, MetricsRegistry
from repro.tape.profile import TapePowerProfile
from repro.tape.sequencer import TapeSequencer
from repro.tape.states import TapePowerState
from repro.tape.stats import TapeStats
from repro.types import Request

#: Completion callback signature — identical to the disk drive's, with
#: the drive's completion id in the disk-id slot so one
#: :class:`~repro.report.MetricsCollector` can log both tiers.
TapeCompletionCallback = Callable[[Request, int, float], None]

_UNMOUNTED = TapePowerState.UNMOUNTED
_MOUNTING = TapePowerState.MOUNTING
_LOADED = TapePowerState.LOADED
_SEEKING = TapePowerState.SEEKING
_READING = TapePowerState.READING
_UNMOUNTING = TapePowerState.UNMOUNTING


class TapeDrive:
    """One tape drive inside the event-driven storage simulation."""

    __slots__ = (
        "drive_id",
        "completion_id",
        "_engine",
        "profile",
        "_sequencer",
        "_on_complete",
        "_state",
        "stats",
        "_head_m",
        "_pending",
        "_plan",
        "_current",
        "_current_seek_s",
        "_unmount_timer",
        "_seek_histogram",
        "_energy_histogram",
    )

    def __init__(
        self,
        drive_id: int,
        engine: SimulationEngine,
        profile: TapePowerProfile,
        sequencer: TapeSequencer,
        on_complete: Optional[TapeCompletionCallback] = None,
        completion_id: Optional[int] = None,
        registry: Optional[MetricsRegistry] = None,
    ):
        """Create a drive attached to ``engine``.

        ``completion_id`` is the id reported to ``on_complete`` (the
        tier offsets it past the disk ids so a shared collector can
        split the tiers); it defaults to ``drive_id``.
        """
        self.drive_id = drive_id
        self.completion_id = drive_id if completion_id is None else completion_id
        self._engine = engine
        self.profile = profile
        self._sequencer = sequencer
        self._on_complete = on_complete
        self._state = _UNMOUNTED
        self.stats = TapeStats(profile)
        self.stats.begin(_UNMOUNTED, engine.now)
        self._head_m = 0.0
        self._pending: List[Tuple[Request, float]] = []
        self._plan: Deque[Tuple[Request, float]] = deque()
        self._current: Optional[Tuple[Request, float]] = None
        self._current_seek_s = 0.0
        self._unmount_timer: Optional[ReusableTimer] = None
        self._seek_histogram: Optional[Histogram] = None
        self._energy_histogram: Optional[Histogram] = None
        if registry is not None:
            self._seek_histogram = registry.histogram("tape.seek_distance_m")
            self._energy_histogram = registry.histogram("tape.request_energy_j")

    # ------------------------------------------------------------------
    # public interface
    # ------------------------------------------------------------------

    @property
    def state(self) -> TapePowerState:
        return self._state

    @property
    def head_position_m(self) -> float:
        """Current head position in metres from the start of the tape."""
        return self._head_m

    @property
    def queue_length(self) -> int:
        """Pending + planned requests plus the one in service."""
        return (
            len(self._pending)
            + len(self._plan)
            + (1 if self._current is not None else 0)
        )

    def submit(self, request: Request, position_m: float) -> None:
        """Accept a request for data at ``position_m`` metres."""
        if not 0.0 <= position_m <= self.profile.tape_length:
            raise ConfigurationError(
                f"request {request.request_id} targets {position_m} m, off "
                f"the {self.profile.tape_length} m tape"
            )
        self._pending.append((request, position_m))
        state = self._state
        if state is _UNMOUNTED:
            self._start_mount()
        elif state is _LOADED:
            # Idle with a cartridge threaded: cancel the breakeven
            # unmount timer and plan a fresh batch immediately.
            if self._unmount_timer is not None:
                self._unmount_timer.cancel()
            self._advance()
        # MOUNTING / SEEKING / READING / UNMOUNTING: picked up when the
        # in-flight transition or service completes.

    def finalize(self) -> None:
        """Close the stats ledger at simulation end."""
        self.stats.finalize(self._engine.now)

    # ------------------------------------------------------------------
    # state machine internals
    # ------------------------------------------------------------------

    def _transition(self, new_state: TapePowerState) -> None:
        self.stats.transition(new_state, self._engine.now)
        self._state = new_state

    def _start_mount(self) -> None:
        self._transition(_MOUNTING)
        if self.profile.mount_time > 0:
            self._engine.schedule_after(
                self.profile.mount_time, self._on_mount_complete
            )
        else:
            self._on_mount_complete()

    def _on_mount_complete(self) -> None:
        if self._state is not _MOUNTING:
            raise SimulationError(
                f"mount completion in state {self._state.value} on tape "
                f"drive {self.drive_id}"
            )
        self._head_m = 0.0  # cartridges mount rewound
        self._transition(_LOADED)
        self._advance()

    def _advance(self) -> None:
        """Serve the plan; replan from pending when it drains.

        Iterative so zero-cost steps (unit profiles, co-located data)
        cannot overflow the stack.
        """
        while True:
            if not self._plan:
                if not self._pending:
                    self._transition(_LOADED)
                    self._arm_unmount_timer()
                    return
                self._build_plan()
                continue
            request, position = self._plan.popleft()
            distance = abs(position - self._head_m)
            self.stats.note_seek(distance)
            if self._seek_histogram is not None:
                self._seek_histogram.observe(distance)
            self._current = (request, position)
            seek_s = self.profile.seek_time(distance)
            self._current_seek_s = seek_s
            if seek_s > 0:
                self._transition(_SEEKING)
                self._engine.schedule_after(seek_s, self._on_seek_complete)
                return
            self._head_m = position
            self._transition(_READING)
            read_s = self.profile.read_time(request.size_bytes)
            if read_s > 0:
                self._engine.schedule_after(read_s, self._on_read_complete)
                return
            self._complete_current(read_s)
            # loop: next planned request (or replan / go idle)

    def _build_plan(self) -> None:
        """Sequence the whole pending queue into the service plan."""
        pending = self._pending
        self._pending = []
        order = self._sequencer.plan(
            self._head_m, [position for _, position in pending]
        )
        self._plan = deque(pending[index] for index in order)

    def _on_seek_complete(self) -> None:
        if self._state is not _SEEKING or self._current is None:
            raise SimulationError(
                f"seek completion in state {self._state.value} on tape "
                f"drive {self.drive_id}"
            )
        self._head_m = self._current[1]
        self._transition(_READING)
        read_s = self.profile.read_time(self._current[0].size_bytes)
        if read_s > 0:
            self._engine.schedule_after(read_s, self._on_read_complete)
            return
        self._complete_current(read_s)
        self._advance()

    def _on_read_complete(self) -> None:
        if self._state is not _READING:
            raise SimulationError(
                f"read completion in state {self._state.value} on tape "
                f"drive {self.drive_id}"
            )
        current = self._current
        if current is None:
            raise SimulationError("read completion with no request in flight")
        read_s = self.profile.read_time(current[0].size_bytes)
        self._complete_current(read_s)
        self._advance()

    def _complete_current(self, read_s: float) -> None:
        current = self._current
        if current is None:
            raise SimulationError("completion with no request in flight")
        self._current = None
        request = current[0]
        self.stats.note_request_serviced()
        if self._energy_histogram is not None:
            self._energy_histogram.observe(
                self._current_seek_s * self.profile.seek_power
                + read_s * self.profile.read_power
            )
        if self._on_complete is not None:
            self._on_complete(request, self.completion_id, self._engine.now)

    def _arm_unmount_timer(self) -> None:
        timer = self._unmount_timer
        if timer is None:
            timer = self._unmount_timer = self._engine.timer(
                self._on_unmount_timeout
            )
        timer.schedule_after(self.profile.mount_breakeven_time)

    def _on_unmount_timeout(self) -> None:
        if self._state is not _LOADED:
            return  # a request slipped in and the cancel raced; ignore
        if self._pending or self._plan:
            raise SimulationError(
                "unmount timeout fired with queued tape requests"
            )
        self._start_unmount()

    def _start_unmount(self) -> None:
        self._transition(_UNMOUNTING)
        if self.profile.unmount_time > 0:
            self._engine.schedule_after(
                self.profile.unmount_time, self._on_unmount_complete
            )
        else:
            self._on_unmount_complete()

    def _on_unmount_complete(self) -> None:
        if self._state is not _UNMOUNTING:
            raise SimulationError(
                f"unmount completion in state {self._state.value} on tape "
                f"drive {self.drive_id}"
            )
        self._head_m = 0.0  # the unmount rewinds the cartridge
        self._transition(_UNMOUNTED)
        if self._pending:
            # Requests arrived during the unmount; remount immediately.
            self._start_mount()
