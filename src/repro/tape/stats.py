"""Per-tape-drive statistics: state-time ledger, energy, seek distance.

:class:`TapeStats` mirrors :class:`~repro.disk.stats.DiskStats` for the
tape state machine: the drive notifies it of every state transition and
it integrates time (and therefore energy) per state, plus the
tape-specific counters — mounts, unmounts, and total metres of tape
wound — that the ``tape_tier`` bench panels report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import SimulationError
from repro.tape.profile import TapePowerProfile
from repro.tape.states import TapePowerState


@dataclass(slots=True)
class TapeStats:
    """Time/energy ledger of one simulated tape drive.

    Attributes:
        profile: Power profile used to convert state time into energy.
        state_time: Seconds accumulated per power state.
        mounts: Completed cartridge mounts.
        unmounts: Completed cartridge unmounts.
        requests_serviced: Requests whose read completed on this drive.
        seek_distance_m: Total metres of tape wound across all seeks.
    """

    profile: TapePowerProfile
    state_time: Dict[TapePowerState, float] = field(
        default_factory=lambda: {state: 0.0 for state in TapePowerState}
    )
    mounts: int = 0
    unmounts: int = 0
    requests_serviced: int = 0
    seek_distance_m: float = 0.0
    _current_state: TapePowerState = TapePowerState.UNMOUNTED
    _state_since: float = 0.0
    _closed: bool = False

    def begin(self, state: TapePowerState, now: float) -> None:
        """Initialise the ledger at simulation start."""
        self._current_state = state
        self._state_since = now

    def transition(self, new_state: TapePowerState, now: float) -> None:
        """Close the current state interval and open a new one."""
        since = self._state_since
        if self._closed:
            raise SimulationError("tape stats already finalised")
        if now < since:
            raise SimulationError(f"time went backwards: {now} < {since}")
        self.state_time[self._current_state] += now - since
        if new_state is TapePowerState.MOUNTING:
            self.mounts += 1
        elif new_state is TapePowerState.UNMOUNTING:
            self.unmounts += 1
        self._current_state = new_state
        self._state_since = now

    def note_request_serviced(self) -> None:
        """Count one completed read on this drive."""
        self.requests_serviced += 1

    def note_seek(self, distance_m: float) -> None:
        """Credit one seek of ``distance_m`` metres to the wind odometer."""
        if distance_m < 0:
            raise SimulationError("seek distance must be >= 0")
        self.seek_distance_m += distance_m

    def finalize(self, now: float) -> None:
        """Close the open interval at simulation end (idempotent)."""
        if self._closed:
            return
        if now < self._state_since:
            raise SimulationError(
                f"time went backwards: {now} < {self._state_since}"
            )
        self.state_time[self._current_state] += now - self._state_since
        self._state_since = now
        self._closed = True

    @property
    def current_state(self) -> TapePowerState:
        return self._current_state

    @property
    def total_time(self) -> float:
        """Seconds accounted across all power states."""
        return sum(self.state_time.values())

    @property
    def energy(self) -> float:
        """Joules consumed: per-state power x time."""
        return sum(
            self.profile.power(state) * seconds
            for state, seconds in self.state_time.items()
        )

    def state_fractions(self) -> Dict[TapePowerState, float]:
        """Fraction of total time per state (zeros if no time elapsed)."""
        total = self.total_time
        if total == 0:
            return {state: 0.0 for state in TapePowerState}
        return {
            state: seconds / total for state, seconds in self.state_time.items()
        }
