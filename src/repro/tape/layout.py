"""Popularity-ranked data layout on the linear medium.

Where a data id sits on the tape decides every future seek to it, so the
layout is the placement decision of the cold tier. :class:`TapeLayout`
places ids by popularity rank using the same Zipf mass the traces model
(:func:`repro.placement.zipf.zipf_probabilities`): each rank's position
is the cumulative probability mass of all more-popular ranks, scaled to
the tape length. Popular ids therefore sit near the start of the tape —
cheap to reach from the rewound/mounted head position — and are spread
apart in proportion to their access mass, while the cold tail packs
densely toward the far end, so a batch of tail requests is served by one
short sweep of a narrow window.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.errors import ConfigurationError
from repro.placement.zipf import zipf_probabilities
from repro.types import DataId


class TapeLayout:
    """Immutable data-id -> tape-position map for one cartridge."""

    __slots__ = ("_positions", "tape_length_m")

    def __init__(self, positions: Dict[DataId, float], tape_length_m: float):
        """Wrap a precomputed position map (metres from tape start)."""
        if tape_length_m <= 0:
            raise ConfigurationError("tape_length_m must be > 0")
        for data_id, position in positions.items():
            if not 0.0 <= position <= tape_length_m:
                raise ConfigurationError(
                    f"data {data_id} at {position} m is off the "
                    f"{tape_length_m} m tape"
                )
        self._positions = positions
        self.tape_length_m = tape_length_m

    @classmethod
    def from_ranked_ids(
        cls,
        ranked_ids: Sequence[DataId],
        tape_length_m: float,
        exponent: float = 1.0,
    ) -> "TapeLayout":
        """Lay ``ranked_ids`` (most popular first) out by Zipf mass.

        Rank ``r``'s position is the Zipf CDF *before* rank ``r`` times
        the tape length: rank 0 sits at 0 m, and each id starts where
        the access mass of everything more popular ends.
        """
        if len(set(ranked_ids)) != len(ranked_ids):
            raise ConfigurationError("ranked_ids contains duplicates")
        positions: Dict[DataId, float] = {}
        if ranked_ids:
            probabilities = zipf_probabilities(len(ranked_ids), exponent)
            mass_before = 0.0
            for data_id, probability in zip(ranked_ids, probabilities):
                positions[data_id] = mass_before * tape_length_m
                mass_before += probability
        return cls(positions, tape_length_m)

    def position(self, data_id: DataId) -> float:
        """Tape position of ``data_id`` in metres from the start.

        Raises:
            ConfigurationError: if the id has no tape replica.
        """
        try:
            return self._positions[data_id]
        except KeyError:
            raise ConfigurationError(f"data {data_id} has no tape replica")

    def __contains__(self, data_id: DataId) -> bool:
        return data_id in self._positions

    def __len__(self) -> int:
        return len(self._positions)

    def data_ids(self) -> List[DataId]:
        """All ids on this cartridge, in layout (rank) order."""
        return sorted(self._positions, key=lambda d: (self._positions[d], d))
