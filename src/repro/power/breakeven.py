"""Breakeven-time analysis for fixed-threshold power management.

The 2-competitive power management scheme (2CPM, Irani et al.) spins a disk
down after an idle period of exactly the breakeven time
``TB = Eup/down / P_I``. This module provides the supporting math:

* :func:`breakeven_time` — the classic threshold.
* :func:`breakeven_time_with_standby` — a refinement that accounts for
  non-zero standby power (the classic formula assumes standby draws 0 W).
* :func:`idle_interval_energy` — energy a 2CPM-managed disk consumes over an
  idle interval of a given length.
* :func:`competitive_ratio_bound` — the worst-case ratio against the
  offline-optimal policy, which is at most 2 for the classic threshold.
"""

from __future__ import annotations

from repro.errors import ConfigurationError
from repro.power.profile import DiskPowerProfile


def breakeven_time(transition_energy: float, idle_power: float) -> float:
    """Classic breakeven threshold ``TB = Eup/down / P_I`` in seconds.

    ``transition_energy`` (``Eup + Edown``) is in joules and ``idle_power``
    (``P_I``) in watts. An idle interval shorter than ``TB`` is cheaper to
    ride out spinning; a longer one is cheaper to sleep through (ignoring
    standby power).
    """
    if idle_power <= 0:
        raise ConfigurationError("idle power must be positive")
    if transition_energy < 0:
        raise ConfigurationError("transition energy must be >= 0")
    return transition_energy / idle_power


def breakeven_time_with_standby(
    transition_energy: float,
    idle_power: float,
    standby_power: float,
    transition_time: float = 0.0,
) -> float:
    """Breakeven threshold (seconds) accounting for non-zero standby power.

    ``transition_energy`` is joules; the powers are watts;
    ``transition_time`` (``Tup + Tdown``) is seconds. Sleeping through an
    interval of length ``t`` costs
    ``Eup/down + (t - Tup - Tdown) * P_standby``; staying idle costs
    ``t * P_I``. The breakeven point solves for equality.
    """
    if idle_power <= standby_power:
        raise ConfigurationError(
            "idle power must exceed standby power for spin-down to ever pay off"
        )
    numerator = transition_energy - standby_power * transition_time
    return max(0.0, numerator) / (idle_power - standby_power)


def idle_interval_energy(profile: DiskPowerProfile, gap: float) -> float:
    """Energy a 2CPM-managed disk consumes over an idle gap of ``gap`` s.

    For ``gap < TB`` the disk stays idle the whole time. Otherwise it idles
    ``TB`` seconds, spins down, sleeps, and spins up in time for the next
    request (the transition time is assumed to fit inside the gap; for gaps
    in ``[TB, TB + Tup + Tdown)`` the simulator keeps the disk idle, matching
    Lemma 1 case II, and that branch is handled here too).
    """
    if gap < 0:
        raise ConfigurationError("gap must be >= 0")
    threshold = profile.breakeven_time
    if gap < threshold + profile.transition_time:
        return gap * profile.idle_power
    sleep_time = gap - threshold - profile.transition_time
    return (
        threshold * profile.idle_power
        + profile.transition_energy
        + sleep_time * profile.standby_power
    )


def always_on_interval_energy(profile: DiskPowerProfile, gap: float) -> float:
    """Joules an always-on disk consumes over a gap of ``gap`` seconds."""
    if gap < 0:
        raise ConfigurationError("gap must be >= 0")
    return gap * profile.idle_power


def competitive_ratio_bound(profile: DiskPowerProfile) -> float:
    """Worst-case 2CPM-vs-optimal ratio for a single idle interval.

    With zero standby power the classic bound is exactly 2, achieved by an
    adversarial gap of exactly ``TB``: 2CPM pays ``TB*P_I + Eup/down`` where
    the optimum pays ``min(TB*P_I, Eup/down)``. Non-zero standby power and
    the override threshold shift the bound; this evaluates it directly.
    """
    threshold = profile.breakeven_time
    worst_gap = threshold + profile.transition_time
    online = (
        threshold * profile.idle_power
        + profile.transition_energy
    )
    offline_optimal = min(
        worst_gap * profile.idle_power,
        profile.transition_energy
        + (worst_gap - profile.transition_time) * profile.standby_power,
    )
    if offline_optimal == 0:
        return 1.0
    return online / offline_optimal
