"""Disk power modelling: states, profiles, breakeven math, policies."""

from repro.power.breakeven import (
    always_on_interval_energy,
    breakeven_time,
    breakeven_time_with_standby,
    competitive_ratio_bound,
    idle_interval_energy,
)
from repro.power.oracle import (
    OracleDecision,
    OracleResult,
    empirical_competitive_ratio,
    oracle_energy,
    optimal_gap_energy,
    two_cpm_energy,
)
from repro.power.policy import (
    AlwaysOnPolicy,
    FixedThresholdPolicy,
    PowerPolicy,
    ScaledBreakevenPolicy,
    TwoCompetitivePolicy,
)
from repro.power.profile import (
    BARRACUDA,
    CHEETAH_15K5,
    PAPER_EVAL,
    PAPER_UNIT,
    PROFILES,
    DiskPowerProfile,
    get_profile,
)
from repro.power.states import STATE_ORDER, DiskPowerState

__all__ = [
    "AlwaysOnPolicy",
    "BARRACUDA",
    "CHEETAH_15K5",
    "DiskPowerProfile",
    "DiskPowerState",
    "FixedThresholdPolicy",
    "OracleDecision",
    "OracleResult",
    "PAPER_EVAL",
    "PAPER_UNIT",
    "PROFILES",
    "PowerPolicy",
    "ScaledBreakevenPolicy",
    "STATE_ORDER",
    "TwoCompetitivePolicy",
    "always_on_interval_energy",
    "breakeven_time",
    "breakeven_time_with_standby",
    "competitive_ratio_bound",
    "empirical_competitive_ratio",
    "get_profile",
    "idle_interval_energy",
    "optimal_gap_energy",
    "oracle_energy",
    "two_cpm_energy",
]
