"""Disk power-management policies.

A :class:`PowerPolicy` decides *when a disk that has just gone idle should
spin down*. The simulator asks the policy once per idle transition; the
policy answers with the number of seconds of idleness to tolerate before
starting a spin-down, or ``None`` to keep the disk spinning indefinitely.

The paper's experiments use :class:`TwoCompetitivePolicy` (2CPM — threshold
equal to the breakeven time) and normalise energy against
:class:`AlwaysOnPolicy`. :class:`FixedThresholdPolicy` generalises 2CPM to
arbitrary thresholds for ablations.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Optional

from repro.errors import ConfigurationError
from repro.power.profile import DiskPowerProfile


class PowerPolicy(ABC):
    """Strategy deciding the idleness threshold of each disk."""

    @abstractmethod
    def idle_timeout(self, profile: DiskPowerProfile) -> Optional[float]:
        """Seconds of idleness before spin-down; ``None`` = never spin down."""

    @property
    def name(self) -> str:
        return type(self).__name__


class TwoCompetitivePolicy(PowerPolicy):
    """2CPM: spin down after exactly the breakeven time ``TB``.

    This is the 2-competitive deterministic policy the paper builds on —
    its energy never exceeds twice the offline optimum for any arrival
    sequence (Irani et al.).
    """

    def idle_timeout(self, profile: DiskPowerProfile) -> Optional[float]:
        return profile.breakeven_time

    @property
    def name(self) -> str:
        return "2CPM"


class AlwaysOnPolicy(PowerPolicy):
    """Never spin down. The paper's normalisation baseline."""

    def idle_timeout(self, profile: DiskPowerProfile) -> Optional[float]:
        return None

    @property
    def name(self) -> str:
        return "always-on"


class FixedThresholdPolicy(PowerPolicy):
    """Spin down after a caller-chosen idleness threshold.

    A threshold of 0 spins the disk down the moment its queue drains
    (aggressive); thresholds above ``TB`` are conservative. Commercial MAID
    systems (Copan-400, AutoMAID) expose exactly this knob.
    """

    def __init__(self, threshold: float):
        if threshold < 0:
            raise ConfigurationError(f"threshold must be >= 0, got {threshold}")
        self._threshold = threshold

    @property
    def threshold(self) -> float:
        return self._threshold

    def idle_timeout(self, profile: DiskPowerProfile) -> Optional[float]:
        return self._threshold

    @property
    def name(self) -> str:
        return f"fixed-threshold({self._threshold:g}s)"


class ScaledBreakevenPolicy(PowerPolicy):
    """Spin down after ``factor * TB`` — used by threshold ablations."""

    def __init__(self, factor: float):
        if factor < 0:
            raise ConfigurationError(f"factor must be >= 0, got {factor}")
        self._factor = factor

    @property
    def factor(self) -> float:
        return self._factor

    def idle_timeout(self, profile: DiskPowerProfile) -> Optional[float]:
        return self._factor * profile.breakeven_time

    @property
    def name(self) -> str:
        return f"scaled-breakeven({self._factor:g}x)"
