"""Offline-optimal per-disk power management (the 2CPM yardstick).

2CPM is *2-competitive*: for any request sequence its energy is at most
twice what an omniscient policy would spend (Irani et al., cited in
Section 1). This module computes that omniscient optimum — per idle gap,
sleep iff sleeping is cheaper — so experiments can measure the empirical
competitive ratio of 2CPM on real schedules, not just the worst-case
bound. Used by ``benchmarks/bench_ablation_threshold.py``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.power.breakeven import idle_interval_energy
from repro.power.profile import DiskPowerProfile


@dataclass(frozen=True)
class OracleDecision:
    """Optimal handling of one idle gap.

    ``gap`` is the idle-gap length in seconds; ``energy`` the joules the
    optimal choice spends on it.
    """

    gap: float
    sleep: bool
    energy: float


@dataclass(frozen=True)
class OracleResult:
    """Optimal power management of one disk's request chain.

    Attributes:
        energy: Joules spent over all gaps (service energy excluded — it
            is schedule-invariant).
        decisions: Per-gap choices, in chain order.
        spin_cycles: Number of sleep decisions (each costs one
            down+up transition pair).
    """

    energy: float
    decisions: Sequence[OracleDecision]

    @property
    def spin_cycles(self) -> int:
        return sum(1 for decision in self.decisions if decision.sleep)


def gap_sleep_energy(profile: DiskPowerProfile, gap: float) -> float:
    """Joules spent sleeping through a gap of ``gap`` seconds
    (transition + standby floor).

    Gaps shorter than the transition time cannot fit a full spin cycle;
    sleeping is then infeasible and this returns ``inf``.
    """
    if gap < profile.transition_time:
        return float("inf")
    return (
        profile.transition_energy
        + (gap - profile.transition_time) * profile.standby_power
    )


def gap_idle_energy(profile: DiskPowerProfile, gap: float) -> float:
    """Joules spent riding out a gap of ``gap`` seconds fully spinning."""
    return gap * profile.idle_power


def optimal_gap_energy(profile: DiskPowerProfile, gap: float) -> OracleDecision:
    """The omniscient choice for one idle gap of ``gap`` seconds."""
    if gap < 0:
        raise ConfigurationError("gap must be >= 0")
    idle = gap_idle_energy(profile, gap)
    sleep = gap_sleep_energy(profile, gap)
    if sleep < idle:
        return OracleDecision(gap=gap, sleep=True, energy=sleep)
    return OracleDecision(gap=gap, sleep=False, energy=idle)


def oracle_energy(
    profile: DiskPowerProfile, arrival_times: Sequence[float], horizon: float
) -> OracleResult:
    """Optimal energy for one disk given its (sorted) arrival times.

    ``arrival_times`` and ``horizon`` are simulated seconds. The disk
    starts asleep, wakes exactly in time for each burst it must serve, and
    the tail gap runs to ``horizon``. An empty chain costs only standby
    power.
    """
    times = list(arrival_times)
    if any(b < a for a, b in zip(times, times[1:])):
        raise ConfigurationError("arrival times must be sorted")
    if times and horizon < times[-1]:
        raise ConfigurationError("horizon precedes the last arrival")
    decisions: List[OracleDecision] = []
    if not times:
        return OracleResult(
            energy=horizon * profile.standby_power, decisions=()
        )
    # Lead-in: sleep until the wake-up for the first request.
    lead = times[0]
    decisions.append(
        OracleDecision(
            gap=lead,
            sleep=True,
            energy=profile.spin_up_energy
            + max(0.0, lead - profile.spin_up_time) * profile.standby_power,
        )
    )
    for current, nxt in zip(times, times[1:]):
        decisions.append(optimal_gap_energy(profile, nxt - current))
    # Tail: sleeping always wins eventually; compare both anyway.
    decisions.append(optimal_gap_energy(profile, horizon - times[-1]))
    return OracleResult(
        energy=sum(decision.energy for decision in decisions),
        decisions=tuple(decisions),
    )


def two_cpm_energy(
    profile: DiskPowerProfile, arrival_times: Sequence[float], horizon: float
) -> float:
    """2CPM energy in joules for the same chain of arrival seconds
    (gap-by-gap, analytic)."""
    times = list(arrival_times)
    if not times:
        return horizon * profile.standby_power
    energy = (
        profile.spin_up_energy
        + max(0.0, times[0] - profile.spin_up_time) * profile.standby_power
    )
    for current, nxt in zip(times, times[1:]):
        energy += idle_interval_energy(profile, nxt - current)
    energy += idle_interval_energy(profile, horizon - times[-1])
    return energy


def empirical_competitive_ratio(
    profile: DiskPowerProfile,
    chains: Sequence[Sequence[float]],
    horizon: float,
) -> float:
    """2CPM-vs-oracle energy ratio aggregated over many disk chains.

    The theoretical guarantee is ratio <= 2 (for zero standby power); on
    realistic traces the measured ratio is usually far lower because most
    gaps are either clearly short or clearly long.
    """
    online = 0.0
    offline = 0.0
    for chain in chains:
        online += two_cpm_energy(profile, chain, horizon)
        offline += oracle_energy(profile, chain, horizon).energy
    if offline == 0:
        return 1.0
    return online / offline
