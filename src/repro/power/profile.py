"""Disk power profiles (the paper's Fig. 5 configuration).

A :class:`DiskPowerProfile` bundles the 2CPM parameters
``P = {Tup/down, Eup/down, TB, PI}`` together with the per-state powers the
simulator integrates over time.

The paper simulated Seagate Cheetah 15K.5 disks but, because that datasheet
omits standby power, took power numbers from the Seagate Barracuda
specification. :data:`BARRACUDA` mirrors those public datasheet values;
:data:`CHEETAH_15K5` is provided for users who want the faster geometry with
plausible enterprise-class powers; :data:`PAPER_UNIT` is the teaching model
of Section 2.3 (1 W idle, free transitions, breakeven fixed at 5 s).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional

from repro.errors import ConfigurationError
from repro.power.states import DiskPowerState


@dataclass(frozen=True)
class DiskPowerProfile:
    """Electrical model of one disk.

    Attributes:
        name: Human-readable identifier used in reports.
        idle_power: ``P_I`` — watts while spinning with no I/O.
        active_power: Watts while servicing an I/O.
        standby_power: Watts while platters are stopped.
        spin_up_power: Average watts drawn during the spin-up transition.
        spin_down_power: Average watts drawn during the spin-down transition.
        spin_up_time: ``Tup`` seconds.
        spin_down_time: ``Tdown`` seconds.
        breakeven_override: Optional explicit ``TB``; when ``None`` the
            2-competitive threshold ``TB = (Eup + Edown) / P_I`` is used.
    """

    name: str
    idle_power: float
    active_power: float
    standby_power: float
    spin_up_power: float
    spin_down_power: float
    spin_up_time: float
    spin_down_time: float
    breakeven_override: Optional[float] = None

    def __post_init__(self) -> None:
        for field_name in (
            "idle_power",
            "active_power",
            "standby_power",
            "spin_up_power",
            "spin_down_power",
            "spin_up_time",
            "spin_down_time",
        ):
            value = getattr(self, field_name)
            if value < 0:
                raise ConfigurationError(f"{field_name} must be >= 0, got {value}")
        if self.idle_power == 0 and self.breakeven_override is None:
            raise ConfigurationError(
                "idle_power == 0 requires an explicit breakeven_override"
            )
        if self.breakeven_override is not None and self.breakeven_override < 0:
            raise ConfigurationError("breakeven_override must be >= 0")

    @property
    def spin_up_energy(self) -> float:
        """``Eup`` — joules to spin the disk up (standby -> idle)."""
        return self.spin_up_power * self.spin_up_time

    @property
    def spin_down_energy(self) -> float:
        """``Edown`` — joules to spin the disk down (idle -> standby)."""
        return self.spin_down_power * self.spin_down_time

    @property
    def transition_energy(self) -> float:
        """``Eup/down = Eup + Edown`` — the full standby round-trip energy
        in joules."""
        return self.spin_up_energy + self.spin_down_energy

    @property
    def transition_time(self) -> float:
        """``Tup + Tdown`` seconds."""
        return self.spin_up_time + self.spin_down_time

    @property
    def breakeven_time(self) -> float:
        """``TB`` — the 2CPM idleness threshold in seconds (Section 1).

        ``TB = Eup/down / P_I`` unless an explicit override is configured
        (the paper's unit-cost example fixes ``TB = 5`` with free
        transitions).
        """
        if self.breakeven_override is not None:
            return self.breakeven_override
        return self.transition_energy / self.idle_power

    @property
    def max_request_energy(self) -> float:
        """``EPmax = Eup + Edown + TB * P_I`` in joules (Section 3.1.1).

        The most a single request can cost under 2CPM: its disk idles a full
        breakeven period, spins down, and must spin up for the successor.
        """
        return self.transition_energy + self.breakeven_time * self.idle_power

    def power(self, state: DiskPowerState) -> float:
        """Steady-state watts drawn in ``state``."""
        return _POWER_FIELD_BY_STATE[state](self)

    def state_powers(self) -> Dict[DiskPowerState, float]:
        """Mapping of every state to its steady-state power in watts."""
        return {state: self.power(state) for state in DiskPowerState}

    def with_overrides(self, **changes: float) -> "DiskPowerProfile":
        """Copy of this profile with selected fields replaced."""
        return replace(self, **changes)

    def describe(self) -> str:
        """Multi-line human-readable summary (used by the Fig. 5 bench)."""
        lines = [
            f"profile: {self.name}",
            f"  idle power (P_I)       : {self.idle_power:.2f} W",
            f"  active power           : {self.active_power:.2f} W",
            f"  standby power          : {self.standby_power:.2f} W",
            f"  spin-up                : {self.spin_up_time:.1f} s @ "
            f"{self.spin_up_power:.1f} W = {self.spin_up_energy:.1f} J",
            f"  spin-down              : {self.spin_down_time:.1f} s @ "
            f"{self.spin_down_power:.1f} W = {self.spin_down_energy:.1f} J",
            f"  breakeven time (TB)    : {self.breakeven_time:.2f} s",
            f"  max request energy     : {self.max_request_energy:.1f} J",
        ]
        return "\n".join(lines)


_POWER_FIELD_BY_STATE = {
    DiskPowerState.IDLE: lambda p: p.idle_power,
    DiskPowerState.ACTIVE: lambda p: p.active_power,
    DiskPowerState.STANDBY: lambda p: p.standby_power,
    DiskPowerState.SPIN_UP: lambda p: p.spin_up_power,
    DiskPowerState.SPIN_DOWN: lambda p: p.spin_down_power,
}


#: Seagate Barracuda-like profile (the power numbers the paper borrowed
#: because the Cheetah datasheet omits standby power). Breakeven works out
#: to ~17.5 s, inside the paper's quoted 5-15 s spin-up-penalty band.
BARRACUDA = DiskPowerProfile(
    name="seagate-barracuda",
    idle_power=9.3,
    active_power=12.6,
    standby_power=0.8,
    spin_up_power=24.0,
    spin_down_power=9.3,
    spin_up_time=6.0,
    spin_down_time=2.0,
)

#: Enterprise 15K RPM profile with Cheetah-like geometry-era powers.
CHEETAH_15K5 = DiskPowerProfile(
    name="seagate-cheetah-15k5",
    idle_power=12.5,
    active_power=17.0,
    standby_power=2.0,
    spin_up_power=30.0,
    spin_down_power=12.5,
    spin_up_time=8.0,
    spin_down_time=2.0,
)

#: The unit-cost teaching model of Section 2.3: 1 unit of energy per second
#: in active/idle, free instantaneous transitions, breakeven fixed at 5 s.
PAPER_UNIT = DiskPowerProfile(
    name="paper-unit-model",
    idle_power=1.0,
    active_power=1.0,
    standby_power=0.0,
    spin_up_power=0.0,
    spin_down_power=0.0,
    spin_up_time=0.0,
    spin_down_time=0.0,
    breakeven_override=5.0,
)

#: The profile the evaluation harness uses — Barracuda datasheet powers
#: with the transition times the paper's own response-time figures imply
#: (Fig. 12/13 show spin-up delays "up to 15 second", so Tup = 15 s;
#: TB works out to ~43 s). This stands in for the paper's Fig. 5 table.
PAPER_EVAL = DiskPowerProfile(
    name="paper-evaluation",
    idle_power=9.3,
    active_power=12.6,
    standby_power=0.8,
    spin_up_power=24.0,
    spin_down_power=9.3,
    spin_up_time=15.0,
    spin_down_time=4.0,
)

PROFILES: Dict[str, DiskPowerProfile] = {
    profile.name: profile
    for profile in (BARRACUDA, CHEETAH_15K5, PAPER_UNIT, PAPER_EVAL)
}


def get_profile(name: str) -> DiskPowerProfile:
    """Look up a built-in profile by name.

    Raises:
        ConfigurationError: if the name is unknown.
    """
    try:
        return PROFILES[name]
    except KeyError:
        known = ", ".join(sorted(PROFILES))
        raise ConfigurationError(f"unknown power profile {name!r}; known: {known}")
