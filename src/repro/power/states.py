"""Disk power states.

The paper's disk model (Section 2.1 and Appendix B) uses five states:

* ``ACTIVE`` — the head is servicing an I/O (milliseconds per request).
* ``IDLE`` — platters spinning, no I/O in flight; full idle power ``P_I``.
* ``STANDBY`` — platters stopped; roughly one tenth of idle power.
* ``SPIN_UP`` / ``SPIN_DOWN`` — transitions between standby and idle, taking
  ``Tup`` / ``Tdown`` seconds and ``Eup`` / ``Edown`` joules.
"""

from __future__ import annotations

from enum import Enum


class DiskPowerState(Enum):
    """Power state of a simulated disk."""

    STANDBY = "standby"
    SPIN_UP = "spin-up"
    IDLE = "idle"
    ACTIVE = "active"
    SPIN_DOWN = "spin-down"

    # Enum's default __hash__ is a Python-level `hash(self._name_)` call;
    # members are per-process singletons, so the C-level identity hash is
    # equivalent (eq is identity too) and keeps the per-transition
    # `state_time[state]` ledger updates off the profile.
    __hash__ = object.__hash__  # type: ignore[assignment]

    @property
    def is_spinning(self) -> bool:
        """True when the platters are at full speed (can service I/O)."""
        return self in (DiskPowerState.IDLE, DiskPowerState.ACTIVE)

    @property
    def is_transitioning(self) -> bool:
        """True during a spin-up or spin-down transition."""
        return self in (DiskPowerState.SPIN_UP, DiskPowerState.SPIN_DOWN)


#: Canonical ordering used by reports (matches the paper's Fig. 9 legend).
STATE_ORDER = (
    DiskPowerState.STANDBY,
    DiskPowerState.ACTIVE,
    DiskPowerState.IDLE,
    DiskPowerState.SPIN_UP,
    DiskPowerState.SPIN_DOWN,
)
