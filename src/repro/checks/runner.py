"""File discovery and rule execution (per-file and whole-program)."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import (
    Collection,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

#: Anything acceptable as a lint target path.
PathSpec = Union[str, "os.PathLike[str]"]

from repro.checks.config import CheckConfig
from repro.checks.registry import FileContext, Rule, all_rules
from repro.checks.suppression import SuppressionIndex, scan_pragmas
from repro.checks.violation import Violation

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


@dataclass(frozen=True)
class CheckReport:
    """Outcome of one lint run: violations plus unparseable files."""

    violations: Tuple[Violation, ...] = ()
    parse_errors: Tuple[Tuple[str, str], ...] = ()
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


def iter_python_files(paths: Sequence[PathSpec]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (files are yielded verbatim)."""
    for path in (os.fspath(p) for p in paths):
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in SKIP_DIRS and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def check_source(
    source: str,
    path: str = "<string>",
    config: Optional[CheckConfig] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; raises ``SyntaxError`` on unparseable input.

    Project rules run over a single-module project, so determinism- and
    asyncio-family findings local to the snippet still fire (the supplied
    ``path`` decides which scopes the snippet's module lands in).
    """
    config = config if config is not None else CheckConfig()
    tree = ast.parse(source, filename=path)
    context = FileContext(path=path, source=source, tree=tree, config=config)
    suppressions = scan_pragmas(source)
    rule_list = list(rules) if rules is not None else all_rules()
    found: List[Violation] = []
    for rule in rule_list:
        if not config.rule_enabled(rule.code):
            continue
        for violation in rule.check(context):
            if not suppressions.is_suppressed(violation):
                found.append(violation)
    found.extend(
        _run_project_rules(
            [(path, source, tree)], {path: suppressions}, config, rule_list
        )
    )
    return sorted(set(found))


def check_paths(
    paths: Sequence[PathSpec],
    config: Optional[CheckConfig] = None,
    rules: Optional[Iterable[Rule]] = None,
    restrict_to: Optional[Collection[str]] = None,
) -> CheckReport:
    """Lint every Python file under ``paths`` and aggregate the findings.

    ``restrict_to`` limits *reported* findings to the given files (compared
    by normalised path) while the whole-program context is still built over
    everything discovered — the ``lint --changed`` fast path: cross-module
    rules stay sound, output stays scoped to the edited files.
    """
    config = config if config is not None else CheckConfig()
    rule_list = list(rules) if rules is not None else all_rules()
    restricted: Optional[FrozenSet[str]] = (
        None
        if restrict_to is None
        else frozenset(os.path.abspath(os.fspath(p)) for p in restrict_to)
    )
    sources: List[Tuple[str, str, ast.Module]] = []
    suppressions: Dict[str, SuppressionIndex] = {}
    violations: List[Violation] = []
    parse_errors: List[Tuple[str, str]] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            parse_errors.append((path, f"unreadable: {exc}"))
            continue
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            parse_errors.append((path, f"syntax error: {exc.msg} (line {exc.lineno})"))
            continue
        sources.append((path, source, tree))
        index = scan_pragmas(source)
        suppressions[path] = index
        if not _selected(path, restricted):
            continue
        context = FileContext(path=path, source=source, tree=tree, config=config)
        for rule in rule_list:
            if not config.rule_enabled(rule.code):
                continue
            for violation in rule.check(context):
                if not index.is_suppressed(violation):
                    violations.append(violation)
    for violation in _run_project_rules(sources, suppressions, config, rule_list):
        if _selected(violation.path, restricted):
            violations.append(violation)
    return CheckReport(
        violations=tuple(sorted(set(violations))),
        parse_errors=tuple(sorted(parse_errors)),
        files_checked=files_checked,
    )


def _run_project_rules(
    sources: Sequence[Tuple[str, str, ast.Module]],
    suppressions: Dict[str, SuppressionIndex],
    config: CheckConfig,
    rules: Sequence[Rule],
) -> List[Violation]:
    """Build the whole-program context and run every project-aware rule."""
    if not sources:
        return []
    # Imported here: the analysis package pulls in the registry, which this
    # module feeds — a local import keeps the module graph acyclic.
    from repro.checks.analysis.project import build_project

    project = build_project(sources, config)
    found: List[Violation] = []
    empty = SuppressionIndex()
    for rule in rules:
        if not config.rule_enabled(rule.code):
            continue
        for violation in rule.check_project(project):
            if not suppressions.get(violation.path, empty).is_suppressed(violation):
                found.append(violation)
    return found


def _selected(path: str, restricted: Optional[FrozenSet[str]]) -> bool:
    return restricted is None or os.path.abspath(path) in restricted
