"""File discovery and rule execution."""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple, Union

#: Anything acceptable as a lint target path.
PathSpec = Union[str, "os.PathLike[str]"]

from repro.checks.config import CheckConfig
from repro.checks.registry import FileContext, Rule, all_rules
from repro.checks.suppression import scan_pragmas
from repro.checks.violation import Violation

#: Directory names never descended into during discovery.
SKIP_DIRS = frozenset(
    {"__pycache__", ".git", ".pytest_cache", ".mypy_cache", ".ruff_cache", "build", "dist"}
)


@dataclass(frozen=True)
class CheckReport:
    """Outcome of one lint run: violations plus unparseable files."""

    violations: Tuple[Violation, ...] = ()
    parse_errors: Tuple[Tuple[str, str], ...] = ()
    files_checked: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.parse_errors

    @property
    def exit_code(self) -> int:
        return 0 if self.ok else 1


@dataclass(frozen=True)
class _SourceFile:
    path: str
    source: str


def iter_python_files(paths: Sequence[PathSpec]) -> Iterator[str]:
    """Yield ``.py`` files under ``paths`` (files are yielded verbatim)."""
    for path in (os.fspath(p) for p in paths):
        if os.path.isfile(path):
            yield path
            continue
        for dirpath, dirnames, filenames in os.walk(path):
            dirnames[:] = sorted(
                d
                for d in dirnames
                if d not in SKIP_DIRS and not d.endswith(".egg-info")
            )
            for filename in sorted(filenames):
                if filename.endswith(".py"):
                    yield os.path.join(dirpath, filename)


def check_source(
    source: str,
    path: str = "<string>",
    config: Optional[CheckConfig] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> List[Violation]:
    """Lint one source string; raises ``SyntaxError`` on unparseable input."""
    config = config if config is not None else CheckConfig()
    tree = ast.parse(source, filename=path)
    context = FileContext(path=path, source=source, tree=tree, config=config)
    suppressions = scan_pragmas(source)
    found: List[Violation] = []
    for rule in rules if rules is not None else all_rules():
        if not config.rule_enabled(rule.code):
            continue
        for violation in rule.check(context):
            if not suppressions.is_suppressed(violation):
                found.append(violation)
    return sorted(found)


def check_paths(
    paths: Sequence[PathSpec],
    config: Optional[CheckConfig] = None,
    rules: Optional[Iterable[Rule]] = None,
) -> CheckReport:
    """Lint every Python file under ``paths`` and aggregate the findings."""
    config = config if config is not None else CheckConfig()
    rule_list = list(rules) if rules is not None else all_rules()
    violations: List[Violation] = []
    parse_errors: List[Tuple[str, str]] = []
    files_checked = 0
    for path in iter_python_files(paths):
        files_checked += 1
        try:
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            parse_errors.append((path, f"unreadable: {exc}"))
            continue
        try:
            violations.extend(check_source(source, path, config, rule_list))
        except SyntaxError as exc:
            parse_errors.append((path, f"syntax error: {exc.msg} (line {exc.lineno})"))
    return CheckReport(
        violations=tuple(sorted(violations)),
        parse_errors=tuple(sorted(parse_errors)),
        files_checked=files_checked,
    )
