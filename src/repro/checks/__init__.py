"""reprolint — domain-aware static analysis for the reproduction.

The simulator's correctness depends on invariants the Python runtime never
checks: energy/power/time quantities hide behind bare ``float``s (Eq. 5/6 mix
joules, watts, and seconds), simulated time must never be compared with
``==``, and every scheduler run must be deterministic under a seed.  This
package is an AST-based lint framework that checks those invariants
statically.

Usage::

    repro-storage lint [paths...]
    python -m repro.checks [paths...]

Rule catalogue (see :mod:`repro.checks.rules`):

========  ==================================================================
RPL001    float ``==``/``!=`` on time/energy-suffixed expressions
RPL002    unit-suffix discipline on public energy/power/time parameters
RPL003    unseeded ``random``/``numpy.random`` module-level calls
RPL004    scheduler contract (required methods, no frozen-Request mutation)
RPL005    mutable default arguments
RPL006    bare or overbroad ``except`` clauses
========  ==================================================================

Violations can be suppressed per line with ``# reprolint: disable=RPL001``
(comma-separated codes, or ``all``) and per file with a
``# reprolint: disable-file=RPL001`` comment on a line of its own.
"""

from __future__ import annotations

from repro.checks.config import CheckConfig, UnitVocabulary
from repro.checks.registry import Rule, all_rules, get_rule, register_rule
from repro.checks.runner import check_paths, check_source
from repro.checks.violation import Violation

__all__ = [
    "CheckConfig",
    "Rule",
    "UnitVocabulary",
    "Violation",
    "all_rules",
    "check_paths",
    "check_source",
    "get_rule",
    "main",
    "register_rule",
]


def main(argv: "list[str] | None" = None) -> int:
    """Entry point shared by ``python -m repro.checks`` and the CLI."""
    from repro.checks.cli import run_lint

    return run_lint(argv)
