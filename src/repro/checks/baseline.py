"""Accepted-findings baseline: adopt new rules without a flag day.

A baseline file (``reprolint-baseline.json``) records findings that were
present when a rule was introduced and have been *triaged as benign*;
runs subtract baselined findings before deciding the exit code, so CI
can gate on "no **new** findings" while the accepted debt is paid down
incrementally.  Three properties keep the mechanism honest:

* every entry carries a human-written ``justification`` — loading a
  baseline with a missing or empty justification is an error, so debt
  cannot be accepted silently;
* entries are matched **line-insensitively** on ``(path, code, message)``
  fingerprints — moving code around does not resurrect accepted
  findings, but changing the finding itself (new message) does;
* entries that no longer match anything are **stale** and fail the run —
  a fixed finding must leave the baseline in the same change, so the
  file never rots into an unreviewable allowlist.

The file format is deliberately plain JSON (sorted, indented) so diffs
in review show exactly which finding is being accepted and why.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.checks.runner import CheckReport
from repro.checks.violation import Violation
from repro.errors import ReproError

#: File name discovered by the upward walk (and written by default).
BASELINE_FILENAME = "reprolint-baseline.json"

#: Bumped only on incompatible format changes.
BASELINE_VERSION = 1

#: Placeholder written by ``--write-baseline``; non-empty on purpose so a
#: freshly written file loads, but conspicuous enough to catch in review.
TODO_JUSTIFICATION = "TODO: justify why this finding is benign, or fix it"

#: A line-insensitive identity for one accepted finding.
Fingerprint = Tuple[str, str, str]


class BaselineError(ReproError):
    """The baseline file is malformed, unreadable, or missing a field."""


@dataclass(frozen=True)
class BaselineEntry:
    """One accepted finding plus the reason it was accepted."""

    path: str
    code: str
    message: str
    justification: str

    @property
    def fingerprint(self) -> Fingerprint:
        return (self.path, self.code, self.message)

    def format(self) -> str:
        """Human-oriented one-liner used in stale-entry reports."""
        return f"{self.path}: {self.code} {self.message}"


@dataclass(frozen=True)
class Baseline:
    """A parsed baseline file: accepted fingerprints with justifications."""

    entries: Tuple[BaselineEntry, ...] = ()
    path: Optional[str] = None

    def fingerprints(self) -> FrozenSet[Fingerprint]:
        """The accepted identities (compute once, then test membership)."""
        return frozenset(entry.fingerprint for entry in self.entries)

    @property
    def base_dir(self) -> Optional[str]:
        """Directory the file lives in; entry paths are relative to it."""
        if self.path is None:
            return None
        return os.path.dirname(os.path.abspath(self.path))


@dataclass(frozen=True)
class BaselineOutcome:
    """Result of subtracting a baseline from a report."""

    report: CheckReport
    suppressed: Tuple[Violation, ...] = ()
    stale: Tuple[BaselineEntry, ...] = ()

    @property
    def ok(self) -> bool:
        """True when nothing new fired *and* no entry went stale."""
        return self.report.ok and not self.stale


def fingerprint_of(
    violation: Violation, base_dir: Optional[str] = None
) -> Fingerprint:
    """The line-insensitive identity of a finding.

    With ``base_dir`` (the directory holding the baseline file) the path
    is relativised against it, so fingerprints match no matter where the
    lint run was started from or whether paths were given absolute.
    """
    return (
        normalise_path(violation.path, base_dir),
        violation.code,
        violation.message,
    )


def normalise_path(path: str, base_dir: Optional[str] = None) -> str:
    """Forward-slashed, dot-free path so fingerprints survive OS moves."""
    if base_dir is not None:
        path = os.path.relpath(os.path.abspath(path), base_dir)
    return os.path.normpath(path).replace(os.sep, "/").replace("\\", "/")


def find_baseline(start: str) -> Optional[str]:
    """Walk upward from ``start`` looking for :data:`BASELINE_FILENAME`.

    ``start`` may be a file or directory; the walk stops at the
    filesystem root.  Returns the first hit, or ``None``.
    """
    directory = os.path.abspath(start)
    if not os.path.isdir(directory):
        directory = os.path.dirname(directory)
    while True:
        candidate = os.path.join(directory, BASELINE_FILENAME)
        if os.path.isfile(candidate):
            return candidate
        parent = os.path.dirname(directory)
        if parent == directory:
            return None
        directory = parent


def load_baseline(path: str) -> Baseline:
    """Parse and validate a baseline file; raises :class:`BaselineError`."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path!r}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path!r} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise BaselineError(f"baseline {path!r}: top level must be an object")
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise BaselineError(
            f"baseline {path!r}: unsupported version {version!r} "
            f"(expected {BASELINE_VERSION})"
        )
    raw_entries = payload.get("entries")
    if not isinstance(raw_entries, list):
        raise BaselineError(f"baseline {path!r}: 'entries' must be a list")
    entries: List[BaselineEntry] = []
    for position, raw in enumerate(raw_entries):
        entries.append(_parse_entry(path, position, raw))
    return Baseline(entries=tuple(entries), path=path)


def apply_baseline(report: CheckReport, baseline: Baseline) -> BaselineOutcome:
    """Subtract accepted findings from ``report`` and spot stale entries."""
    accepted = baseline.fingerprints()
    base_dir = baseline.base_dir
    kept: List[Violation] = []
    suppressed: List[Violation] = []
    matched: Set[Fingerprint] = set()
    for violation in report.violations:
        fingerprint = fingerprint_of(violation, base_dir)
        if fingerprint in accepted:
            matched.add(fingerprint)
            suppressed.append(violation)
        else:
            kept.append(violation)
    stale = tuple(
        entry for entry in baseline.entries if entry.fingerprint not in matched
    )
    return BaselineOutcome(
        report=replace(report, violations=tuple(kept)),
        suppressed=tuple(suppressed),
        stale=stale,
    )


def write_baseline(
    report: CheckReport,
    path: str,
    existing: Optional[Baseline] = None,
) -> Baseline:
    """Write ``report``'s findings to ``path`` as a fresh baseline.

    Justifications from ``existing`` are carried over for findings that
    are still present; new findings get :data:`TODO_JUSTIFICATION` so the
    review diff makes the un-triaged debt impossible to miss.
    """
    base_dir = os.path.dirname(os.path.abspath(path)) or None
    carried: Dict[Fingerprint, str] = {}
    if existing is not None:
        for entry in existing.entries:
            carried[entry.fingerprint] = entry.justification
    entries: List[BaselineEntry] = []
    seen: Set[Fingerprint] = set()
    for violation in report.violations:
        fingerprint = fingerprint_of(violation, base_dir)
        if fingerprint in seen:
            continue  # line-insensitive: one entry covers every duplicate
        seen.add(fingerprint)
        entries.append(
            BaselineEntry(
                path=fingerprint[0],
                code=fingerprint[1],
                message=fingerprint[2],
                justification=carried.get(fingerprint, TODO_JUSTIFICATION),
            )
        )
    entries.sort(key=lambda entry: entry.fingerprint)
    payload = {
        "version": BASELINE_VERSION,
        "entries": [
            {
                "path": entry.path,
                "code": entry.code,
                "message": entry.message,
                "justification": entry.justification,
            }
            for entry in entries
        ],
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return Baseline(entries=tuple(entries), path=path)


def _parse_entry(path: str, position: int, raw: object) -> BaselineEntry:
    where = f"baseline {path!r}, entry {position}"
    if not isinstance(raw, dict):
        raise BaselineError(f"{where}: must be an object")
    fields: Dict[str, str] = {}
    for field in ("path", "code", "message", "justification"):
        value = raw.get(field)
        if not isinstance(value, str) or not value.strip():
            raise BaselineError(f"{where}: {field!r} must be a non-empty string")
        fields[field] = value
    unknown = sorted(set(raw) - {"path", "code", "message", "justification"})
    if unknown:
        raise BaselineError(f"{where}: unknown field(s) {', '.join(unknown)}")
    return BaselineEntry(
        path=normalise_path(fields["path"]),
        code=fields["code"],
        message=fields["message"],
        justification=fields["justification"],
    )
