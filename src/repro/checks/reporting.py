"""Text and JSON reporters for lint runs."""

from __future__ import annotations

import json

from repro.checks.runner import CheckReport


def render_text(report: CheckReport) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [violation.format() for violation in report.violations]
    lines.extend(f"{path}: {message}" for path, message in report.parse_errors)
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        lines.append(f"reprolint: {report.files_checked} {noun} checked, no violations")
    else:
        lines.append(
            f"reprolint: {report.files_checked} {noun} checked, "
            f"{len(report.violations)} violation(s), "
            f"{len(report.parse_errors)} parse error(s)"
        )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-oriented report (stable key order for diffing in CI)."""
    payload = {
        "files_checked": report.files_checked,
        "violations": [violation.as_dict() for violation in report.violations],
        "parse_errors": [
            {"path": path, "message": message} for path, message in report.parse_errors
        ],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)
