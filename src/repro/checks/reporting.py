"""Text, JSON, and SARIF reporters for lint runs."""

from __future__ import annotations

import json
from typing import Any, Dict, List

from repro.checks.registry import all_rules
from repro.checks.runner import CheckReport
from repro.checks.violation import Violation

#: The SARIF spec version we emit (what GitHub code scanning ingests).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA_URI = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(report: CheckReport) -> str:
    """Human-oriented report: one line per finding plus a summary."""
    lines = [violation.format() for violation in report.violations]
    lines.extend(f"{path}: {message}" for path, message in report.parse_errors)
    noun = "file" if report.files_checked == 1 else "files"
    if report.ok:
        lines.append(f"reprolint: {report.files_checked} {noun} checked, no violations")
    else:
        lines.append(
            f"reprolint: {report.files_checked} {noun} checked, "
            f"{len(report.violations)} violation(s), "
            f"{len(report.parse_errors)} parse error(s)"
        )
    return "\n".join(lines)


def render_json(report: CheckReport) -> str:
    """Machine-oriented report (stable key order for diffing in CI)."""
    payload = {
        "files_checked": report.files_checked,
        "violations": [violation.as_dict() for violation in report.violations],
        "parse_errors": [
            {"path": path, "message": message} for path, message in report.parse_errors
        ],
        "ok": report.ok,
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_sarif(report: CheckReport) -> str:
    """SARIF 2.1.0 document for CI code-scanning upload.

    One run, one ``reprolint`` driver carrying the full rule catalogue
    (so findings link to rule help even for rules that did not fire this
    run), one result per violation.  Parse errors become tool execution
    notifications: they are failures of the *run*, not findings about a
    line of code.  Key order is sorted so SARIF artifacts diff cleanly.
    """
    catalogue = all_rules()
    rule_index = {rule.code: index for index, rule in enumerate(catalogue)}
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.code,
            "name": rule.name,
            "shortDescription": {"text": rule.summary},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in catalogue
    ]
    results: List[Dict[str, Any]] = [
        _sarif_result(violation, rule_index) for violation in report.violations
    ]
    notifications: List[Dict[str, Any]] = [
        {
            "level": "error",
            "message": {"text": message},
            "locations": [_sarif_location(path, line=1, column=1)],
        }
        for path, message in report.parse_errors
    ]
    document = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "reprolint",
                        "rules": rules,
                    }
                },
                "results": results,
                "invocations": [
                    {
                        "executionSuccessful": not report.parse_errors,
                        "toolExecutionNotifications": notifications,
                    }
                ],
            }
        ],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def _sarif_result(violation: Violation, rule_index: Dict[str, int]) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": violation.code,
        "level": "error",
        "message": {"text": violation.message},
        "locations": [
            _sarif_location(violation.path, violation.line, violation.column)
        ],
    }
    index = rule_index.get(violation.code)
    if index is not None:
        result["ruleIndex"] = index
    return result


def _sarif_location(path: str, line: int, column: int) -> Dict[str, Any]:
    return {
        "physicalLocation": {
            "artifactLocation": {"uri": _sarif_uri(path)},
            "region": {"startLine": max(line, 1), "startColumn": max(column, 1)},
        }
    }


def _sarif_uri(path: str) -> str:
    """Forward-slashed URI (SARIF wants URIs, not OS paths)."""
    uri = path.replace("\\", "/")
    while uri.startswith("./"):
        uri = uri[2:]
    if uri.startswith("/"):
        return "file://" + uri
    return uri
