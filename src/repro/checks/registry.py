"""Rule base class and the RPL rule registry."""

from __future__ import annotations

import ast
import re
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, Iterator, List, Type

from repro.checks.config import CheckConfig
from repro.checks.violation import Violation
from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover — type-only; avoids a module cycle
    from repro.checks.analysis.project import ProjectContext

_CODE_PATTERN = re.compile(r"^RPL\d{3}$")


@dataclass(frozen=True)
class FileContext:
    """What a rule sees: one parsed module plus its surroundings."""

    path: str
    source: str
    tree: ast.Module
    config: CheckConfig

    def violation(self, rule: "Rule", node: ast.AST, message: str) -> Violation:
        """Build a violation anchored at ``node`` for ``rule``."""
        return Violation(
            path=self.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            message=message,
        )


class Rule(ABC):
    """One named, coded check over a parsed module.

    Subclasses set ``code`` (``RPLxxx``), ``name`` (kebab-case slug used in
    reports and docs), and ``summary`` (one line for ``--list-rules``), and
    implement :meth:`check` yielding violations.
    """

    code: str = ""
    name: str = ""
    summary: str = ""

    @abstractmethod
    def check(self, context: FileContext) -> Iterator[Violation]:
        """Yield every violation of this rule in ``context``."""

    def check_project(self, project: "ProjectContext") -> Iterator[Violation]:
        """Yield whole-program violations (default: none).

        The runner calls this once per lint run with the fully built
        :class:`~repro.checks.analysis.project.ProjectContext`; per-file
        rules simply inherit this no-op.
        """
        return iter(())


class ProjectRule(Rule):
    """A rule that only sees the whole program, never single files.

    Subclasses implement :meth:`Rule.check_project`; the per-file hook is a
    no-op so the registry can treat both kinds uniformly.
    """

    def check(self, context: FileContext) -> Iterator[Violation]:
        return iter(())

    @abstractmethod
    def check_project(self, project: "ProjectContext") -> Iterator[Violation]:
        """Yield every whole-program violation of this rule."""


_REGISTRY: Dict[str, Type[Rule]] = {}


def register_rule(rule_class: Type[Rule]) -> Type[Rule]:
    """Class decorator adding ``rule_class`` to the registry by code."""
    code = rule_class.code
    if not _CODE_PATTERN.match(code):
        raise ConfigurationError(
            f"rule {rule_class.__name__} has malformed code {code!r}"
        )
    if code in _REGISTRY:
        raise ConfigurationError(f"rule code {code} registered twice")
    if not rule_class.name or not rule_class.summary:
        raise ConfigurationError(f"rule {code} must set name and summary")
    _REGISTRY[code] = rule_class
    return rule_class


def all_rules() -> List[Rule]:
    """Instantiate every registered rule, sorted by code."""
    _load_builtin_rules()
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Instantiate the rule registered under ``code``."""
    _load_builtin_rules()
    try:
        return _REGISTRY[code]()
    except KeyError:
        raise ConfigurationError(
            f"unknown rule code {code!r}; known: {sorted(_REGISTRY)}"
        )


def _load_builtin_rules() -> None:
    # Importing the rules package registers every built-in rule exactly once
    # (module import is idempotent).
    import repro.checks.rules  # noqa: F401
