"""Module-level symbol tables and cross-module name resolution.

For every analysed module this records the functions and methods it defines
(with async-ness), the classes and their bases, and the *import aliases* in
scope at module level (``np`` → ``numpy``, ``run_cell`` →
``repro.experiments.common.run_cell``).  :class:`SymbolTable` then resolves
a dotted name as written at a call site — ``helper()``, ``mod.helper()``,
``pkg.mod.helper()``, ``ClassName()`` — to the :class:`FunctionInfo` it
denotes, when and only when the target is defined in the project.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple, Union

from repro.checks.analysis.imports import resolve_import_base
from repro.checks.analysis.modules import ModuleInfo

FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@dataclass(frozen=True)
class FunctionInfo:
    """One function or method defined somewhere in the project."""

    module: str
    qualname: str
    node: FunctionNode
    is_async: bool

    @property
    def function_id(self) -> str:
        """Stable identifier: ``module:qualname``."""
        return f"{self.module}:{self.qualname}"

    @property
    def class_name(self) -> Optional[str]:
        """Enclosing class name for methods, ``None`` for plain functions."""
        if "." not in self.qualname:
            return None
        return self.qualname.rsplit(".", 1)[0]


@dataclass(frozen=True)
class ClassInfo:
    """One class: its methods by name and its base-class name expressions."""

    module: str
    name: str
    methods: Mapping[str, FunctionInfo]
    base_names: Tuple[str, ...]


@dataclass(frozen=True)
class ModuleSymbols:
    """Everything name resolution needs to know about one module."""

    module: str
    functions: Mapping[str, FunctionInfo] = field(default_factory=dict)
    classes: Mapping[str, ClassInfo] = field(default_factory=dict)
    #: Module-level import aliases: local name -> dotted target.
    aliases: Mapping[str, str] = field(default_factory=dict)


class SymbolTable:
    """Project-wide lookup over per-module symbol tables."""

    def __init__(self, modules: Mapping[str, ModuleSymbols]):
        self._modules = dict(modules)

    @property
    def modules(self) -> Mapping[str, ModuleSymbols]:
        return self._modules

    def functions(self) -> Tuple[FunctionInfo, ...]:
        """Every function and method in the project, sorted by id."""
        found: List[FunctionInfo] = []
        for symbols in self._modules.values():
            found.extend(symbols.functions.values())
        return tuple(sorted(found, key=lambda info: info.function_id))

    def function(self, function_id: str) -> Optional[FunctionInfo]:
        """Look up a function by ``module:qualname`` id."""
        module, _, qualname = function_id.partition(":")
        symbols = self._modules.get(module)
        if symbols is None:
            return None
        return symbols.functions.get(qualname)

    def resolve_call(
        self, module: str, parts: Sequence[str], class_name: Optional[str] = None
    ) -> Optional[FunctionInfo]:
        """Resolve a dotted call target written in ``module`` to a function.

        ``parts`` is the attribute chain at the call site (``("helper",)``,
        ``("np", "interp")``, ``("self", "tick")``).  ``class_name`` supplies
        the enclosing class for ``self``/``cls`` receivers.  Returns ``None``
        whenever the target is ambiguous or outside the project.
        """
        symbols = self._modules.get(module)
        if symbols is None or not parts:
            return None
        if parts[0] in ("self", "cls") and class_name is not None:
            if len(parts) == 2:
                return self._method(module, class_name, parts[1])
            return None
        expanded = self._expand_alias(symbols, parts)
        return self._resolve_absolute(module, expanded)

    def _expand_alias(
        self, symbols: ModuleSymbols, parts: Sequence[str]
    ) -> Tuple[str, ...]:
        target = symbols.aliases.get(parts[0])
        if target is None:
            return tuple(parts)
        return (*target.split("."), *parts[1:])

    def _resolve_absolute(
        self, module: str, parts: Tuple[str, ...]
    ) -> Optional[FunctionInfo]:
        # A bare name: a function or class defined in the same module.
        if len(parts) == 1:
            return self._module_callable(module, parts[0])
        # Otherwise find the longest prefix naming a project module and
        # treat the next component as the callable within it.
        for split in range(len(parts) - 1, 0, -1):
            candidate = ".".join(parts[:split])
            if candidate in self._modules:
                if split == len(parts) - 1:
                    return self._module_callable(candidate, parts[split])
                if split == len(parts) - 2:
                    # ``mod.Class.method`` — an explicit method reference.
                    return self._method(candidate, parts[split], parts[split + 1])
                return None
        return None

    def _module_callable(self, module: str, name: str) -> Optional[FunctionInfo]:
        symbols = self._modules.get(module)
        if symbols is None:
            return None
        function = symbols.functions.get(name)
        if function is not None:
            return function
        # Calling a class constructs an instance: treat it as its __init__.
        return self._method(module, name, "__init__")

    def _method(self, module: str, class_name: str, method: str) -> Optional[FunctionInfo]:
        """Method lookup, following resolvable base classes breadth-first."""
        seen: Set[Tuple[str, str]] = set()
        queue: List[Tuple[str, str]] = [(module, class_name)]
        while queue:
            where, cls = queue.pop(0)
            if (where, cls) in seen:
                continue
            seen.add((where, cls))
            symbols = self._modules.get(where)
            if symbols is None:
                continue
            info = symbols.classes.get(cls)
            if info is None:
                continue
            found = info.methods.get(method)
            if found is not None:
                return found
            for base in info.base_names:
                located = self._locate_class(where, base)
                if located is not None:
                    queue.append(located)
        return None

    def _locate_class(self, module: str, base_name: str) -> Optional[Tuple[str, str]]:
        symbols = self._modules.get(module)
        if symbols is None:
            return None
        parts: Tuple[str, ...] = tuple(base_name.split("."))
        if parts[0] in symbols.aliases:
            parts = (*symbols.aliases[parts[0]].split("."), *parts[1:])
        if len(parts) == 1:
            if parts[0] in symbols.classes:
                return (module, parts[0])
            return None
        candidate = ".".join(parts[:-1])
        if candidate in self._modules and parts[-1] in self._modules[candidate].classes:
            return (candidate, parts[-1])
        return None


def build_symbol_table(modules: Mapping[str, ModuleInfo]) -> SymbolTable:
    """Collect per-module symbols for every analysed module."""
    return SymbolTable(
        {name: _module_symbols(info) for name, info in modules.items()}
    )


def _module_symbols(info: ModuleInfo) -> ModuleSymbols:
    functions: Dict[str, FunctionInfo] = {}
    classes: Dict[str, ClassInfo] = {}
    aliases: Dict[str, str] = {}
    _collect_aliases(info, aliases)
    _collect_definitions(info.name, info.tree.body, prefix="", functions=functions, classes=classes)
    return ModuleSymbols(
        module=info.name, functions=functions, classes=classes, aliases=aliases
    )


def _collect_aliases(info: ModuleInfo, aliases: Dict[str, str]) -> None:
    for node in ast.walk(info.tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname is not None:
                    aliases[alias.asname] = alias.name
                else:
                    # ``import a.b.c`` binds the name ``a``.
                    root = alias.name.split(".")[0]
                    aliases[root] = root
        elif isinstance(node, ast.ImportFrom):
            base = resolve_import_base(info, node)
            if base is None:
                continue
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname if alias.asname is not None else alias.name
                aliases[local] = f"{base}.{alias.name}" if base else alias.name


def _collect_definitions(
    module: str,
    body: Sequence[ast.stmt],
    prefix: str,
    functions: Dict[str, FunctionInfo],
    classes: Dict[str, ClassInfo],
) -> None:
    for node in body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            qualname = f"{prefix}{node.name}"
            functions[qualname] = FunctionInfo(
                module=module,
                qualname=qualname,
                node=node,
                is_async=isinstance(node, ast.AsyncFunctionDef),
            )
            # Nested defs become dotted qualnames of their own.
            _collect_definitions(
                module, node.body, f"{qualname}.", functions, classes
            )
        elif isinstance(node, ast.ClassDef):
            class_prefix = f"{prefix}{node.name}."
            before = dict(functions)
            _collect_definitions(module, node.body, class_prefix, functions, classes)
            methods = {
                info.qualname.rsplit(".", 1)[1]: info
                for qualname, info in functions.items()
                if qualname not in before
                and qualname.startswith(class_prefix)
                and "." not in qualname[len(class_prefix):]
            }
            classes[f"{prefix}{node.name}"] = ClassInfo(
                module=module,
                name=f"{prefix}{node.name}",
                methods=methods,
                base_names=tuple(
                    flattened
                    for flattened in (
                        _flatten_name(base) for base in node.bases
                    )
                    if flattened is not None
                ),
            )


def call_name_parts(call: ast.Call) -> Optional[Tuple[str, ...]]:
    """The attribute chain of a call target (``a.b.c(...)`` -> ``(a, b, c)``)."""
    parts: List[str] = []
    probe: ast.expr = call.func
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if not isinstance(probe, ast.Name):
        return None
    parts.append(probe.id)
    return tuple(reversed(parts))


def canonical_call_name(symbols: ModuleSymbols, call: ast.Call) -> Optional[str]:
    """Call target as a canonical dotted name, import aliases expanded.

    ``from time import time; time()`` and ``import time as t; t.time()``
    both canonicalise to ``"time.time"`` — the form the rule vocabularies
    (wall-clock, blocking, RNG constructors) are written in.
    """
    parts = call_name_parts(call)
    if parts is None:
        return None
    target = symbols.aliases.get(parts[0])
    if target is not None:
        parts = (*target.split("."), *parts[1:])
    return ".".join(parts)


def _flatten_name(node: ast.expr) -> Optional[str]:
    """Dotted rendering of a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    probe: ast.expr = node
    while isinstance(probe, ast.Attribute):
        parts.append(probe.attr)
        probe = probe.value
    if not isinstance(probe, ast.Name):
        return None
    parts.append(probe.id)
    return ".".join(reversed(parts))
