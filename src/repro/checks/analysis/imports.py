"""Project import graph.

Edges record *which module imports which*, at statement granularity, with
relative imports resolved against the importing module's package.  A
``from pkg.mod import name`` edge targets ``pkg.mod.name`` when that is
itself a project module (importing a submodule), and ``pkg.mod`` otherwise
(importing a symbol).  Edges to modules outside the analysed project are
kept — rules filter with :meth:`ImportGraph.project_edges` when they only
care about internal structure.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.checks.analysis.modules import ModuleInfo


@dataclass(frozen=True, order=True)
class ImportEdge:
    """One import statement: ``importer`` pulls in ``imported`` at ``line``."""

    importer: str
    imported: str
    line: int


class ImportGraph:
    """Queryable set of import edges over the analysed modules."""

    def __init__(self, edges: Iterable[ImportEdge], module_names: Iterable[str]):
        self._edges: Tuple[ImportEdge, ...] = tuple(sorted(edges))
        self._module_names = frozenset(module_names)
        by_importer: Dict[str, List[ImportEdge]] = {}
        for edge in self._edges:
            by_importer.setdefault(edge.importer, []).append(edge)
        self._by_importer: Dict[str, Tuple[ImportEdge, ...]] = {
            name: tuple(found) for name, found in by_importer.items()
        }

    @property
    def edges(self) -> Tuple[ImportEdge, ...]:
        return self._edges

    def imports_of(self, module: str) -> Tuple[ImportEdge, ...]:
        """Every edge whose importer is ``module``."""
        return self._by_importer.get(module, ())

    def project_edges(self) -> Tuple[ImportEdge, ...]:
        """Edges whose target is (or lies inside) an analysed module."""
        return tuple(
            edge for edge in self._edges if self.is_project_module(edge.imported)
        )

    def is_project_module(self, name: str) -> bool:
        """True when ``name`` or an ancestor package was analysed."""
        probe = name
        while probe:
            if probe in self._module_names:
                return True
            probe, _, _ = probe.rpartition(".")
        return False


def build_import_graph(modules: Mapping[str, ModuleInfo]) -> ImportGraph:
    """Extract every import edge from ``modules`` (keyed by dotted name)."""
    edges: List[ImportEdge] = []
    for info in modules.values():
        for node in ast.walk(info.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    edges.append(
                        ImportEdge(info.name, alias.name, node.lineno)
                    )
            elif isinstance(node, ast.ImportFrom):
                base = resolve_import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    target = f"{base}.{alias.name}" if base else alias.name
                    # ``from pkg import mod`` edges onto the submodule when
                    # it exists in the project; onto ``pkg`` otherwise.
                    if target not in modules and base:
                        target = base
                    edges.append(ImportEdge(info.name, target, node.lineno))
    return ImportGraph(edges, modules.keys())


def resolve_import_base(info: ModuleInfo, node: ast.ImportFrom) -> Optional[str]:
    """The dotted module an ``ImportFrom`` statement reads from.

    Returns ``None`` for a relative import that climbs above the module's
    own package depth (a broken import — left to the interpreter to report).
    """
    if node.level == 0:
        return node.module or ""
    package_parts = info.name.split(".")
    if not info.is_package:
        package_parts = package_parts[:-1]
    climb = node.level - 1
    if climb > len(package_parts):
        return None
    base_parts = package_parts[: len(package_parts) - climb]
    if node.module:
        base_parts = [*base_parts, node.module]
    return ".".join(base_parts)
