"""The ``ProjectContext`` facade handed to project-wide rules."""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterator, Mapping, Optional, Sequence, Tuple

from repro.checks.analysis.callgraph import CallGraph, build_call_graph
from repro.checks.analysis.imports import ImportGraph, build_import_graph
from repro.checks.analysis.modules import (
    ModuleInfo,
    is_package_path,
    module_name_for_path,
)
from repro.checks.analysis.symbols import FunctionInfo, SymbolTable, build_symbol_table
from repro.checks.config import CheckConfig
from repro.checks.registry import Rule
from repro.checks.violation import Violation


@dataclass(frozen=True)
class ProjectContext:
    """Everything a project rule sees: all modules plus the derived graphs."""

    modules: Mapping[str, ModuleInfo]
    imports: ImportGraph
    symbols: SymbolTable
    calls: CallGraph
    config: CheckConfig

    def violation(
        self, rule: Rule, module: ModuleInfo, node: ast.AST, message: str
    ) -> Violation:
        """Build a violation anchored at ``node`` inside ``module``."""
        return Violation(
            path=module.path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0) + 1,
            code=rule.code,
            message=message,
        )

    def violation_at(
        self, rule: Rule, module: ModuleInfo, line: int, message: str
    ) -> Violation:
        """Build a violation at a known line of ``module`` (import edges)."""
        return Violation(
            path=module.path, line=line, column=1, code=rule.code, message=message
        )

    def module_of_function(self, function_id: str) -> Optional[ModuleInfo]:
        """The module a ``module:qualname`` function id lives in."""
        return self.modules.get(function_id.partition(":")[0])

    def functions_in_scope(self, prefixes: Sequence[str]) -> Iterator[FunctionInfo]:
        """Functions whose module matches one of the dotted ``prefixes``."""
        for info in self.symbols.functions():
            if module_in_scope(info.module, prefixes):
                yield info


def module_in_scope(module: str, prefixes: Sequence[str]) -> bool:
    """True when ``module`` equals or lies under one of ``prefixes``."""
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def build_project(
    sources: Sequence[Tuple[str, str, ast.Module]], config: CheckConfig
) -> ProjectContext:
    """Assemble the whole-program context from parsed ``(path, source, tree)``.

    Later duplicates of a module name win (only plausible when linting two
    checkouts at once) — the graphs stay internally consistent either way.
    """
    modules: Dict[str, ModuleInfo] = {}
    for path, source, tree in sources:
        info = ModuleInfo(
            name=module_name_for_path(path),
            path=path,
            source=source,
            tree=tree,
            is_package=is_package_path(path),
        )
        modules[info.name] = info
    symbols = build_symbol_table(modules)
    return ProjectContext(
        modules=modules,
        imports=build_import_graph(modules),
        symbols=symbols,
        calls=build_call_graph(symbols),
        config=config,
    )
