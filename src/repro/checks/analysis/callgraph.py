"""Conservative project call graph with reachability queries.

An edge ``caller -> callee`` exists when a call expression inside
``caller``'s body resolves syntactically through the symbol table: a local
function, an import alias, a ``self``/``cls`` method, an explicit
``mod.Class.method`` reference, or a class constructor (edges onto
``__init__``).  Calls the table cannot resolve — dynamic dispatch through
objects of unknown type, callables passed as values, getattr — contribute
*no* edge, so reachability is an under-approximation: every reported path
exists in the source, some real paths are missed.

Calls inside a nested function belong to the nested function's node, not
the enclosing one; defining a closure is not calling it.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

from repro.checks.analysis.symbols import (
    FunctionInfo,
    FunctionNode,
    SymbolTable,
    call_name_parts,
)


@dataclass(frozen=True, order=True)
class CallEdge:
    """One resolved call site: ``caller`` invokes ``callee`` at ``line``."""

    caller: str
    callee: str
    line: int


class CallGraph:
    """Resolved call edges plus breadth-first reachability."""

    def __init__(self, functions: Mapping[str, FunctionInfo], edges: Iterable[CallEdge]):
        self._functions = dict(functions)
        self._edges: Tuple[CallEdge, ...] = tuple(sorted(set(edges)))
        callees: Dict[str, List[CallEdge]] = {}
        for edge in self._edges:
            callees.setdefault(edge.caller, []).append(edge)
        self._callees: Dict[str, Tuple[CallEdge, ...]] = {
            caller: tuple(found) for caller, found in callees.items()
        }

    @property
    def functions(self) -> Mapping[str, FunctionInfo]:
        return self._functions

    @property
    def edges(self) -> Tuple[CallEdge, ...]:
        return self._edges

    def callees_of(self, function_id: str) -> Tuple[CallEdge, ...]:
        """Outgoing call edges of one ``module:qualname`` function."""
        return self._callees.get(function_id, ())

    def reachable_from(
        self,
        roots: Iterable[str],
        expand_async: bool = True,
    ) -> Dict[str, Optional[str]]:
        """Functions reachable from ``roots``, mapped to their BFS parent.

        Roots map to ``None``.  With ``expand_async=False`` the walk never
        expands *through* a non-root async function: an awaited coroutine
        runs under the event loop's own scheduling and is analysed as a
        root in its own right (the RPL201 traversal mode).
        """
        parents: Dict[str, Optional[str]] = {}
        queue: List[str] = []
        for root in sorted(set(roots)):
            if root not in parents:
                parents[root] = None
                queue.append(root)
        index = 0
        while index < len(queue):
            current = queue[index]
            index += 1
            info = self._functions.get(current)
            if (
                not expand_async
                and info is not None
                and info.is_async
                and parents[current] is not None
            ):
                continue
            for edge in self.callees_of(current):
                if edge.callee not in parents:
                    parents[edge.callee] = current
                    queue.append(edge.callee)
        return parents

    def path_to(self, parents: Mapping[str, Optional[str]], function_id: str) -> Tuple[str, ...]:
        """Root-to-function chain recovered from a ``reachable_from`` map."""
        chain: List[str] = []
        probe: Optional[str] = function_id
        while probe is not None:
            chain.append(probe)
            probe = parents.get(probe)
        return tuple(reversed(chain))


def build_call_graph(symbols: SymbolTable) -> CallGraph:
    """Resolve every call site of every project function into edges."""
    functions: Dict[str, FunctionInfo] = {
        info.function_id: info for info in symbols.functions()
    }
    edges: List[CallEdge] = []
    for info in functions.values():
        for call in iter_own_calls(info.node):
            parts = call_name_parts(call)
            if parts is None:
                continue
            callee = symbols.resolve_call(info.module, parts, info.class_name)
            if callee is None:
                continue
            edges.append(
                CallEdge(info.function_id, callee.function_id, call.lineno)
            )
    return CallGraph(functions, edges)


def iter_own_calls(function: FunctionNode) -> Iterable[ast.Call]:
    """Call expressions in ``function``'s own body, skipping nested defs."""
    stack: List[ast.AST] = list(function.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def iter_module_level_calls(module: ast.Module) -> Iterable[ast.Call]:
    """Calls executed at import time: module and class bodies, no def bodies."""
    stack: List[ast.AST] = list(module.body)
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if isinstance(node, ast.Call):
            yield node
        stack.extend(ast.iter_child_nodes(node))


def display_function(function_id: str) -> str:
    """Human rendering of a ``module:qualname`` id (``repro.sim.engine.run``)."""
    return function_id.replace(":", ".")


def chain_text(
    calls: "CallGraph", parents: Mapping[str, Optional[str]], function_id: str
) -> str:
    """Render the root-to-function call chain for a finding message."""
    chain = calls.path_to(parents, function_id)
    if len(chain) <= 1:
        return display_function(function_id)
    return " -> ".join(display_function(step) for step in chain)
