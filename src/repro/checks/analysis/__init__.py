"""Whole-program analysis substrate for the project-wide RPL rules.

Per-file AST rules (RPL001-RPL007) see one module at a time; the RPL1xx
determinism, RPL2xx asyncio, and RPL3xx layering families need to know how
modules import each other and which functions call which.  This package
builds that picture once per lint run:

* :mod:`modules` — file discovery to dotted module names (``ModuleInfo``);
* :mod:`imports` — the project import graph with relative-import resolution;
* :mod:`symbols` — module-level symbol tables (functions, classes, aliases);
* :mod:`callgraph` — a conservative, under-approximate call graph;
* :mod:`project` — the ``ProjectContext`` facade handed to project rules.

The model is deliberately *under*-approximate: an edge exists only when the
callee can be resolved syntactically (local name, import alias, ``self``
method).  Calls through unknown objects, dynamic dispatch, and higher-order
functions produce no edge — a missed finding, never a spurious one — and
the known imprecision is documented in DESIGN.md §7.
"""

from __future__ import annotations

from repro.checks.analysis.callgraph import CallEdge, CallGraph, build_call_graph
from repro.checks.analysis.imports import ImportEdge, ImportGraph, build_import_graph
from repro.checks.analysis.modules import ModuleInfo, module_name_for_path
from repro.checks.analysis.project import ProjectContext, build_project
from repro.checks.analysis.symbols import FunctionInfo, ModuleSymbols, SymbolTable

__all__ = [
    "CallEdge",
    "CallGraph",
    "FunctionInfo",
    "ImportEdge",
    "ImportGraph",
    "ModuleInfo",
    "ModuleSymbols",
    "ProjectContext",
    "SymbolTable",
    "build_call_graph",
    "build_import_graph",
    "build_project",
    "module_name_for_path",
]
