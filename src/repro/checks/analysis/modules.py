"""Mapping lint targets to dotted module names.

Project rules reason about *modules* (``repro.sim.engine``), not file paths.
For files that exist on disk the name is derived the way Python itself would:
climb parent directories for as long as they contain ``__init__.py`` — the
chain of package directories plus the file stem is the dotted name.  For
in-memory sources (``check_source`` fixtures) the name is derived textually
from the supplied path, so a fixture checked as ``src/repro/sim/fixture.py``
lands in the ``repro.sim`` determinism scope exactly like a real module.
"""

from __future__ import annotations

import ast
import os
from dataclasses import dataclass


@dataclass(frozen=True)
class ModuleInfo:
    """One parsed module of the project under analysis.

    Attributes:
        name: Dotted module name (``repro.sim.engine``).
        path: The path string the runner read the module from — violations
            anchored on this module reuse it verbatim so per-file and
            project findings sort and suppress identically.
        source: Raw source text.
        tree: Parsed AST.
        is_package: True for ``__init__.py`` modules; relative imports
            inside a package resolve against the package itself.
    """

    name: str
    path: str
    source: str
    tree: ast.Module
    is_package: bool


def module_name_for_path(path: str) -> str:
    """Dotted module name for ``path`` (filesystem-aware, textual fallback)."""
    if os.path.isfile(path):
        return _filesystem_name(path)
    return _textual_name(path)


def is_package_path(path: str) -> bool:
    """True when ``path`` names an ``__init__.py`` module."""
    return os.path.basename(path.replace("\\", "/")) == "__init__.py"


def _filesystem_name(path: str) -> str:
    directory, filename = os.path.split(os.path.abspath(path))
    stem = filename[:-3] if filename.endswith(".py") else filename
    parts = [] if stem == "__init__" else [stem]
    while os.path.isfile(os.path.join(directory, "__init__.py")):
        directory, package = os.path.split(directory)
        if not package:
            break
        parts.insert(0, package)
    return ".".join(parts) if parts else stem


def _textual_name(path: str) -> str:
    normalized = path.replace("\\", "/")
    if normalized.endswith(".py"):
        normalized = normalized[: -len(".py")]
    parts = [part for part in normalized.split("/") if part and part != "."]
    # Sources under a conventional ``src/`` layout are importable from the
    # component after the *last* ``src`` marker.
    if "src" in parts:
        parts = parts[len(parts) - parts[::-1].index("src"):]
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    return ".".join(parts) if parts else normalized
