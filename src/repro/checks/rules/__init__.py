"""Built-in RPL rules; importing this package registers all of them.

Codes are grouped in families: RPL0xx per-file domain rules, RPL1xx
whole-program determinism, RPL2xx asyncio correctness, RPL3xx
architecture layering.
"""

from __future__ import annotations

from repro.checks.rules.rpl001_float_equality import FloatEqualityRule
from repro.checks.rules.rpl002_unit_suffixes import UnitSuffixRule
from repro.checks.rules.rpl003_unseeded_random import UnseededRandomRule
from repro.checks.rules.rpl004_scheduler_contract import SchedulerContractRule
from repro.checks.rules.rpl005_mutable_defaults import MutableDefaultRule
from repro.checks.rules.rpl006_broad_except import BroadExceptRule
from repro.checks.rules.rpl007_hot_path_allocation import HotPathAllocationRule
from repro.checks.rules.rpl101_wall_clock import WallClockRule
from repro.checks.rules.rpl102_seed_fallthrough import SeedFallthroughRule
from repro.checks.rules.rpl103_unordered_serialisation import (
    UnorderedSerialisationRule,
)
from repro.checks.rules.rpl201_blocking_in_async import BlockingInAsyncRule
from repro.checks.rules.rpl202_unawaited_coroutine import UnawaitedCoroutineRule
from repro.checks.rules.rpl203_orphan_task import OrphanTaskRule
from repro.checks.rules.rpl301_layering import LayeringRule

__all__ = [
    "BlockingInAsyncRule",
    "BroadExceptRule",
    "FloatEqualityRule",
    "HotPathAllocationRule",
    "LayeringRule",
    "MutableDefaultRule",
    "OrphanTaskRule",
    "SchedulerContractRule",
    "SeedFallthroughRule",
    "UnitSuffixRule",
    "UnorderedSerialisationRule",
    "UnseededRandomRule",
    "WallClockRule",
]
