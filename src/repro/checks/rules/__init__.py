"""Built-in RPL rules; importing this package registers all of them."""

from __future__ import annotations

from repro.checks.rules.rpl001_float_equality import FloatEqualityRule
from repro.checks.rules.rpl002_unit_suffixes import UnitSuffixRule
from repro.checks.rules.rpl003_unseeded_random import UnseededRandomRule
from repro.checks.rules.rpl004_scheduler_contract import SchedulerContractRule
from repro.checks.rules.rpl005_mutable_defaults import MutableDefaultRule
from repro.checks.rules.rpl006_broad_except import BroadExceptRule
from repro.checks.rules.rpl007_hot_path_allocation import HotPathAllocationRule

__all__ = [
    "BroadExceptRule",
    "FloatEqualityRule",
    "HotPathAllocationRule",
    "MutableDefaultRule",
    "SchedulerContractRule",
    "UnitSuffixRule",
    "UnseededRandomRule",
]
