"""RPL201 — blocking calls inside (or reachable from) ``async def``.

The serving layer runs on one event loop; a single ``time.sleep()`` or
``subprocess.run()`` anywhere under an ``async def`` stalls *every*
in-flight request — and under the deterministic virtual-time loop it
deadlocks outright, because virtual time only advances between callbacks.

The per-file view is not enough: the blocking call usually hides in a
synchronous helper two modules away.  This rule roots a call-graph walk at
every ``async def`` in the project and follows *synchronous* edges only —
an awaited coroutine is scheduled by the loop and is analysed as a root in
its own right, so the walk stops at async boundaries instead of blaming
one coroutine for another's body.

The fix: ``await asyncio.sleep(...)``, run blocking work in an executor
(``loop.run_in_executor``), or move it out of the async path.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional

from repro.checks.analysis.callgraph import chain_text, display_function, iter_own_calls
from repro.checks.analysis.project import ProjectContext
from repro.checks.analysis.symbols import canonical_call_name
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation


@register_rule
class BlockingInAsyncRule(ProjectRule):
    """Flag event-loop-blocking calls on async execution paths."""

    code = "RPL201"
    name = "blocking-in-async"
    summary = "no blocking calls inside or reachable from async def bodies"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        vocabulary = project.config.blocking_calls
        if not vocabulary:
            return
        roots = [
            info.function_id
            for info in project.symbols.functions()
            if info.is_async
        ]
        if not roots:
            return
        parents = project.calls.reachable_from(roots, expand_async=False)
        for function_id in sorted(parents):
            info = project.symbols.function(function_id)
            module = project.module_of_function(function_id)
            if info is None or module is None:
                continue
            if info.is_async and parents.get(function_id) is not None:
                continue  # reached async defs are their own roots
            symbols = project.symbols.modules[info.module]
            for call in iter_own_calls(info.node):
                name = canonical_call_name(symbols, call)
                if name is None or name not in vocabulary:
                    continue
                yield project.violation(
                    self,
                    module,
                    call,
                    self._message(name, project, parents, function_id, info.is_async),
                )

    def _message(
        self,
        name: str,
        project: ProjectContext,
        parents: Dict[str, Optional[str]],
        function_id: str,
        is_async: bool,
    ) -> str:
        where = display_function(function_id)
        if is_async:
            return (
                f"blocking call {name}() inside async def {where} stalls "
                "the event loop; await an async equivalent or use an executor"
            )
        return (
            f"blocking call {name}() in {where} stalls the event loop, "
            f"reachable from async code via "
            f"{chain_text(project.calls, parents, function_id)}; await an "
            "async equivalent or use an executor"
        )
