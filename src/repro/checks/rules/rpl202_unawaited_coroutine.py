"""RPL202 — coroutine calls whose result is silently discarded.

Calling an ``async def`` returns a coroutine object; as a bare expression
statement it is *dropped* — the body never runs, Python prints a
``RuntimeWarning`` only if the object is garbage collected with warnings
enabled, and the bug surfaces as work that silently never happened (a
drain that never drained, a flush that never flushed).

Cross-module resolution is the point: whether ``service.drain()`` is a
coroutine depends on how ``drain`` is *defined*, which the per-file view
of the caller cannot know.  The symbol table resolves the callee across
imports, ``self`` methods, and aliases; only a confidently-resolved async
callee fires, so ordinary sync calls never false-positive.

Fix: ``await`` it, or hand it to ``asyncio.create_task`` / ``gather`` and
retain the handle (see RPL203).
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.checks.analysis.callgraph import display_function
from repro.checks.analysis.project import ProjectContext
from repro.checks.analysis.symbols import call_name_parts
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation


@register_rule
class UnawaitedCoroutineRule(ProjectRule):
    """Flag fire-and-forget calls to known coroutine functions."""

    code = "RPL202"
    name = "unawaited-coroutine"
    summary = "no discarded calls to async def functions (await or task them)"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        for info in project.symbols.functions():
            module = project.module_of_function(info.function_id)
            if module is None:
                continue
            for statement in _own_statements(info.node):
                if not isinstance(statement, ast.Expr):
                    continue
                call = statement.value
                if not isinstance(call, ast.Call):
                    continue
                parts = call_name_parts(call)
                if parts is None:
                    continue
                callee = project.symbols.resolve_call(
                    info.module, parts, info.class_name
                )
                if callee is None or not callee.is_async:
                    continue
                yield project.violation(
                    self,
                    module,
                    statement,
                    f"coroutine {display_function(callee.function_id)}() is "
                    f"called but never awaited in "
                    f"{display_function(info.function_id)} — the body never "
                    "runs; await it or create a task",
                )


def _own_statements(function: ast.AST) -> Iterator[ast.stmt]:
    """Every statement in ``function``'s own body, skipping nested defs."""
    stack: List[ast.AST] = list(getattr(function, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        stack.extend(ast.iter_child_nodes(node))