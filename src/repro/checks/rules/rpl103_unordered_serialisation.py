"""RPL103 — unordered ``set`` iteration feeding report serialisation.

Serialised artifacts (``BENCH_*.json``, ``SERVE_*.json``, lint reports)
are diffed byte-for-byte in CI, so any content that passes through an
unordered container on its way out is a time bomb: ``PYTHONHASHSEED``
varies per process, set iteration order varies with it, and the "same"
report stops comparing equal.

Scope: functions whose name marks them as serialisers (``as_dict``,
``payload``, ``summary``, ... — configurable) plus every function
reachable from one through the call graph.  Flagged shapes:

* ``for x in {a, b}`` / ``for x in set(...)`` / ``frozenset(...)``;
* comprehensions iterating one of those;
* ``list(...)`` / ``tuple(...)`` materialising a set expression;
* a local name bound to a set expression and iterated later.

Wrapping the set in ``sorted(...)`` resolves the finding — the order is
then a property of the data, not of the hash seed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.checks.analysis.callgraph import display_function, iter_own_calls
from repro.checks.analysis.project import ProjectContext
from repro.checks.analysis.symbols import FunctionNode
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation

#: Builtins that construct an unordered container.
SET_BUILDERS = frozenset({"set", "frozenset"})
#: Builtins that materialise their argument's iteration order.
ORDER_MATERIALISERS = frozenset({"list", "tuple"})


@register_rule
class UnorderedSerialisationRule(ProjectRule):
    """Flag set-order-dependent iteration on serialisation paths."""

    code = "RPL103"
    name = "unordered-serialisation"
    summary = "no unordered set iteration feeding report serialisation"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        names = project.config.serialisation_functions
        if not names:
            return
        roots = [
            info.function_id
            for info in project.symbols.functions()
            if info.qualname.rsplit(".", 1)[-1] in names
        ]
        parents = project.calls.reachable_from(roots)
        for function_id in sorted(parents):
            info = project.symbols.function(function_id)
            module = project.module_of_function(function_id)
            if info is None or module is None:
                continue
            root = _walk_root(project, parents, function_id)
            suffix = (
                ""
                if parents.get(function_id) is None
                else f" (reachable from serialiser {display_function(root)})"
            )
            local_sets = _locally_bound_sets(info.node)
            for node in ast.walk(info.node):
                target = self._unordered_iteration(node, local_sets)
                if target is None:
                    continue
                yield project.violation(
                    self,
                    module,
                    node,
                    f"iteration over an unordered {target} in serialisation "
                    f"function {display_function(function_id)}{suffix}; "
                    "wrap it in sorted(...) for a stable report",
                )

    def _unordered_iteration(
        self, node: ast.AST, local_sets: Set[str]
    ) -> Optional[str]:
        """Classify ``node`` as unordered-set iteration, or ``None``."""
        if isinstance(node, ast.For):
            return _set_expression(node.iter, local_sets)
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
            for generator in node.generators:
                kind = _set_expression(generator.iter, local_sets)
                if kind is not None:
                    return kind
            return None
        if isinstance(node, ast.Call):
            if (
                isinstance(node.func, ast.Name)
                and node.func.id in ORDER_MATERIALISERS
                and node.args
            ):
                kind = _set_expression(node.args[0], local_sets)
                if kind is not None:
                    return f"{kind} (materialised by {node.func.id}())"
        return None


def _set_expression(node: ast.expr, local_sets: Set[str]) -> Optional[str]:
    """Describe ``node`` when it evaluates to an unordered set."""
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.SetComp):
        return "set comprehension"
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
        if node.func.id in SET_BUILDERS:
            return f"{node.func.id}(...)"
    if isinstance(node, ast.Name) and node.id in local_sets:
        return f"set variable {node.id!r}"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.BitOr, ast.BitAnd, ast.Sub)):
        left = _set_expression(node.left, local_sets)
        right = _set_expression(node.right, local_sets)
        if left is not None or right is not None:
            return "set expression"
    return None


def _locally_bound_sets(function: FunctionNode) -> Set[str]:
    """Names assigned a set expression anywhere in ``function``'s own body."""
    bound: Set[str] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Assign):
            value_kind = _set_expression(node.value, bound)
            if value_kind is None:
                continue
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound.add(target.id)
        elif isinstance(node, ast.AnnAssign):
            if node.value is not None and isinstance(node.target, ast.Name):
                if _set_expression(node.value, bound) is not None:
                    bound.add(node.target.id)
    return bound


def _walk_root(
    project: ProjectContext, parents: Dict[str, Optional[str]], function_id: str
) -> str:
    return project.calls.path_to(parents, function_id)[0]
