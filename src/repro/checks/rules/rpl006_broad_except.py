"""RPL006 — bare or overbroad ``except`` clauses.

``except:`` and ``except Exception:`` swallow programming errors — a typo in
a cost function becomes a silently wrong energy figure instead of a crash.
Catch the narrowest exception that the handler can actually handle (the
library's own hierarchy lives in :mod:`repro.errors`).  A broad handler
that *re-raises* (bare ``raise`` in its body) is allowed: that is the
log-and-propagate pattern, not swallowing.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation

BROAD_NAMES = frozenset({"Exception", "BaseException"})


@register_rule
class BroadExceptRule(Rule):
    """Flag bare excepts and non-re-raising broad handlers."""
    code = "RPL006"
    name = "broad-except"
    summary = "no bare except; except Exception only when re-raising"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield context.violation(
                    self,
                    node,
                    "bare except swallows every error including SystemExit; "
                    "name the exception type",
                )
                continue
            broad = [
                name for name in _exception_names(node.type) if name in BROAD_NAMES
            ]
            if broad and not _reraises(node):
                yield context.violation(
                    self,
                    node,
                    f"except {broad[0]} without re-raise hides programming "
                    "errors; catch a specific exception (see repro.errors)",
                )


def _exception_names(node: ast.expr) -> Iterator[str]:
    if isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _exception_names(element)
    elif isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr


def _reraises(handler: ast.ExceptHandler) -> bool:
    """True when the handler body contains a re-raise of the caught error."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            if node.exc is None:
                return True
            if (
                handler.name is not None
                and isinstance(node.exc, ast.Name)
                and node.exc.id == handler.name
            ):
                return True
            cause = node.cause
            if (
                handler.name is not None
                and isinstance(cause, ast.Name)
                and cause.id == handler.name
            ):
                return True
    return False
