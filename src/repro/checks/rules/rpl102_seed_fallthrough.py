"""RPL102 — maybe-``None`` seeds flowing into RNG constructors.

``random.Random(seed)`` and ``numpy.random.default_rng(seed)`` fall back
to *operating-system entropy* when the seed is ``None`` — so a function
with an optional ``seed: Optional[int] = None`` parameter that forwards it
straight into a constructor is deterministic only when every caller
remembers to pass a seed.  Inside the determinism scope that is exactly
the silent per-run divergence the per-file RPL003 cannot see: the
construction *has* an argument, but the argument may be ``None``.

Whole-program scoping: the rule checks functions defined in the
determinism scope and functions reachable from it through the call graph.
The fix is to make the seed required in scope, or to pass the constructed
generator down instead of the seed.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional, Set

from repro.checks.analysis.callgraph import chain_text, display_function, iter_own_calls
from repro.checks.analysis.project import ProjectContext
from repro.checks.analysis.symbols import FunctionNode, canonical_call_name
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation


@register_rule
class SeedFallthroughRule(ProjectRule):
    """Flag optional-seed parameters forwarded into RNG constructors."""

    code = "RPL102"
    name = "seed-fallthrough"
    summary = "no maybe-None seed forwarded into an RNG constructor in scope"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        scope = project.config.determinism_scope
        constructors = project.config.rng_constructors
        if not scope or not constructors:
            return
        roots = [
            info.function_id for info in project.functions_in_scope(scope)
        ]
        parents = project.calls.reachable_from(roots)
        for function_id in sorted(parents):
            info = project.symbols.function(function_id)
            module = project.module_of_function(function_id)
            if info is None or module is None:
                continue
            optional = _optional_parameters(info.node)
            if not optional:
                continue
            symbols = project.symbols.modules[info.module]
            for call in iter_own_calls(info.node):
                name = canonical_call_name(symbols, call)
                if name is None or name not in constructors:
                    continue
                forwarded = _forwarded_optional(call, optional)
                if forwarded is None:
                    continue
                yield project.violation(
                    self,
                    module,
                    call,
                    self._message(name, forwarded, project, parents, function_id),
                )

    def _message(
        self,
        constructor: str,
        parameter: str,
        project: ProjectContext,
        parents: Dict[str, Optional[str]],
        function_id: str,
    ) -> str:
        where = display_function(function_id)
        detail = (
            f"{constructor}({parameter}) falls back to OS entropy when "
            f"{parameter!r} is None"
        )
        if parents.get(function_id) is None:
            return (
                f"{detail} in deterministic function {where}; require the "
                "seed or inject the generator"
            )
        return (
            f"{detail}, reachable from the deterministic core via "
            f"{chain_text(project.calls, parents, function_id)}; require "
            "the seed or inject the generator"
        )


def _optional_parameters(function: FunctionNode) -> Set[str]:
    """Parameter names whose declared default is the constant ``None``."""
    optional: Set[str] = set()
    args = function.args
    positional = [*args.posonlyargs, *args.args]
    for argument, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
        if _is_none(default):
            optional.add(argument.arg)
    for argument, kw_default in zip(args.kwonlyargs, args.kw_defaults):
        if kw_default is not None and _is_none(kw_default):
            optional.add(argument.arg)
    return optional


def _forwarded_optional(call: ast.Call, optional: Set[str]) -> Optional[str]:
    """The optional-parameter name passed as the constructor's seed, if any."""
    if call.args:
        first = call.args[0]
        if isinstance(first, ast.Name) and first.id in optional:
            return first.id
    for keyword in call.keywords:
        if keyword.arg == "seed":
            if isinstance(keyword.value, ast.Name) and keyword.value.id in optional:
                return keyword.value.id
    return None


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None
