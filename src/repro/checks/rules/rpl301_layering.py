"""RPL301 — the import-graph layering contract.

Architecture erodes one convenient import at a time.  The contract this
rule enforces (see ``CheckConfig.layering_contracts``) keeps the
reproduction's dependency arrows pointing downward:

* ``repro.core`` and ``repro.sim`` — the numerical heart — must never
  import the serving layer, the experiment harness, the CLI, the perf
  tooling, or the linter: results must be computable without any of them.
* ``repro.checks`` imports nothing from the domain it checks (only the
  shared ``repro.errors``/``repro.types`` foundation), so a lint run can
  never be perturbed by the code under analysis — and can lint a broken
  tree.

Violations anchor at the offending import statement.  Only edges onto
*project* modules are judged; stdlib and third-party imports are free.
"""

from __future__ import annotations

from typing import Iterator

from repro.checks.analysis.project import ProjectContext, module_in_scope
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation


@register_rule
class LayeringRule(ProjectRule):
    """Enforce the package-level import contracts."""

    code = "RPL301"
    name = "layering-contract"
    summary = "package imports respect the layering contract (core below serve)"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        for contract in project.config.layering_contracts:
            for edge in project.imports.project_edges():
                if not module_in_scope(edge.importer, (contract.package,)):
                    continue
                if module_in_scope(edge.imported, (contract.package,)):
                    continue  # intra-package imports are always fine
                module = project.modules.get(edge.importer)
                if module is None:
                    continue
                if contract.allowed is not None:
                    if not module_in_scope(edge.imported, contract.allowed):
                        yield project.violation_at(
                            self,
                            module,
                            edge.line,
                            f"{edge.importer} imports {edge.imported}, but "
                            f"{contract.package} may only import "
                            f"{', '.join(contract.allowed)} ({contract.reason})",
                        )
                elif module_in_scope(edge.imported, contract.forbidden):
                    yield project.violation_at(
                        self,
                        module,
                        edge.line,
                        f"{edge.importer} imports {edge.imported}, forbidden "
                        f"by the layering contract ({contract.reason})",
                    )
