"""RPL003 — unseeded ``random`` / ``numpy.random`` in library code.

The paper's trace-driven results (Figs. 6-17) are reproducible only if every
source of randomness is seeded and injected.  Module-level draws
(``random.random()``, ``np.random.uniform()``) read hidden global state that
any import may have perturbed; an RNG constructed without a seed
(``random.Random()``, ``np.random.default_rng()``) differs on every run.

Required instead: construct ``random.Random(seed)`` or
``numpy.random.default_rng(seed)`` once, at a boundary that receives the
seed explicitly, and pass the generator down.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.checks.config import SEEDABLE_NUMPY_ATTRS
from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation

#: Module aliases treated as the stdlib ``random`` module.
RANDOM_MODULE_NAMES = frozenset({"random"})
#: Module aliases treated as numpy.
NUMPY_MODULE_NAMES = frozenset({"numpy", "np"})


@register_rule
class UnseededRandomRule(Rule):
    """Flag hidden-global-state and unseeded RNG construction."""
    code = "RPL003"
    name = "unseeded-random"
    summary = "no module-level RNG calls; inject a seeded Random/Generator"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # random.<draw>(...) and random.Random() without a seed.
            if (
                isinstance(func.value, ast.Name)
                and func.value.id in RANDOM_MODULE_NAMES
            ):
                if func.attr == "Random":
                    if not node.args and not node.keywords:
                        yield context.violation(
                            self,
                            node,
                            "random.Random() without a seed is nondeterministic; "
                            "pass an explicit seed",
                        )
                else:
                    yield context.violation(
                        self,
                        node,
                        f"module-level random.{func.attr}() uses hidden global "
                        "state; inject a seeded random.Random instead",
                    )
                continue
            # numpy.random.<draw>(...) via ``np.random.x`` or
            # ``from numpy import random as nprandom`` style attribute chains.
            if (
                isinstance(func.value, ast.Attribute)
                and func.value.attr == "random"
                and isinstance(func.value.value, ast.Name)
                and func.value.value.id in NUMPY_MODULE_NAMES
            ):
                if func.attr in SEEDABLE_NUMPY_ATTRS:
                    if not node.args and not node.keywords:
                        yield context.violation(
                            self,
                            node,
                            f"numpy.random.{func.attr}() without a seed is "
                            "nondeterministic; pass an explicit seed",
                        )
                else:
                    yield context.violation(
                        self,
                        node,
                        f"module-level numpy.random.{func.attr}() uses the "
                        "hidden global generator; inject a seeded "
                        "numpy.random.Generator instead",
                    )
