"""RPL101 — wall-clock reads reachable from the deterministic core.

The reproduction's headline property is byte-identical replay: the same
seed and trace must produce the same joule figures (Eq. 4-7) and the same
serving reports on every run.  A single ``time.time()`` /
``datetime.now()`` / ``perf_counter()`` on a dispatch path breaks that
silently — results depend on when the run happened, not what it computed.

This is a whole-program rule: the determinism scope (``repro.sim``,
``repro.core``, ``repro.serve`` by default) roots a call-graph walk, so a
wall-clock read hiding in a helper module *called from* the core is caught
even though its own file looks innocent.  Import-time reads in scope
modules are flagged too.  Wall-clock names are matched after import-alias
expansion (``from time import time`` included).

Measurement code (``repro.perf``, the experiment harness) reads the real
clock legitimately — it is outside the scope and unreachable from it, so
it never fires here.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, Optional

from repro.checks.analysis.callgraph import (
    chain_text,
    display_function,
    iter_module_level_calls,
    iter_own_calls,
)
from repro.checks.analysis.project import ProjectContext, module_in_scope
from repro.checks.analysis.symbols import canonical_call_name
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation


@register_rule
class WallClockRule(ProjectRule):
    """Flag wall-clock calls on (or reachable from) deterministic paths."""

    code = "RPL101"
    name = "wall-clock-in-core"
    summary = "no wall-clock reads reachable from sim/core/serve paths"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        scope = project.config.determinism_scope
        vocabulary = project.config.wall_clock_calls
        if not scope or not vocabulary:
            return
        roots = [
            info.function_id for info in project.functions_in_scope(scope)
        ]
        parents = project.calls.reachable_from(roots)
        for function_id in sorted(parents):
            info = project.symbols.function(function_id)
            module = project.module_of_function(function_id)
            if info is None or module is None:
                continue
            symbols = project.symbols.modules[info.module]
            for call in iter_own_calls(info.node):
                name = canonical_call_name(symbols, call)
                if name is None or name not in vocabulary:
                    continue
                yield project.violation(
                    self, module, call, self._message(name, project, parents, function_id)
                )
        # Import-time reads inside the scope's own modules.
        for module_name in sorted(project.modules):
            if not module_in_scope(module_name, scope):
                continue
            module = project.modules[module_name]
            symbols = project.symbols.modules[module_name]
            for call in iter_module_level_calls(module.tree):
                name = canonical_call_name(symbols, call)
                if name is None or name not in vocabulary:
                    continue
                yield project.violation(
                    self,
                    module,
                    call,
                    f"import-time wall-clock read {name}() in deterministic "
                    f"module {module_name}; inject the timestamp instead",
                )

    def _message(
        self,
        name: str,
        project: ProjectContext,
        parents: Dict[str, Optional[str]],
        function_id: str,
    ) -> str:
        where = display_function(function_id)
        if parents.get(function_id) is None:
            return (
                f"wall-clock read {name}() in deterministic function "
                f"{where}; use the simulated clock or inject the timestamp"
            )
        return (
            f"wall-clock read {name}() reachable from the deterministic "
            f"core via {chain_text(project.calls, parents, function_id)}; "
            "use the simulated clock or inject the timestamp"
        )
