"""RPL007 — allocation-heavy constructs in known hot functions.

The simulation core dispatches tens of thousands of events per run; a
comprehension inside a per-event function rebuilds a fresh container on
*every* call, and those allocations dominate profiles long before the
arithmetic does (the incremental-cost-caching work exists precisely
because of this pattern). The rule flags list/set/dict comprehensions —
and generator expressions materialised through ``list``/``tuple``/
``set``/``frozenset``/``sorted``/``dict`` — inside functions named in
``CheckConfig.hot_functions``, but only in the hot-path modules selected
by ``CheckConfig.hot_path_parts`` (the simulation core and scheduler
layer); offline/analysis code may comprehend freely.

The rule is *interprocedural* when the whole program is available: a
helper called from a hot function is itself on the hot path — its
allocations run once per event too, wherever it lives — so the project
pass follows the call graph out of the annotated functions and flags
allocations in everything reachable, naming the hot root in the message.

Deliberately cold constructs on a hot-function line can be waived with
``# reprolint: disable=RPL007`` — materialised generator expressions are
reported at the enclosing builder call so the pragma sits on the call
line, not the expression's.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Sequence, Set, Tuple, Union

from repro.checks.analysis.callgraph import chain_text
from repro.checks.analysis.project import ProjectContext
from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation

#: Builtins that materialise a generator expression into a container.
MATERIALISERS = frozenset({"list", "tuple", "set", "frozenset", "sorted", "dict"})

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp)

_KIND_LABELS = {
    ast.ListComp: "list comprehension",
    ast.SetComp: "set comprehension",
    ast.DictComp: "dict comprehension",
}

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]


@register_rule
class HotPathAllocationRule(Rule):
    """Flag per-call container rebuilds inside known hot functions."""

    code = "RPL007"
    name = "hot-path-allocation"
    summary = "no per-call container rebuilds in known hot functions"

    def check(self, context: FileContext) -> Iterator[Violation]:
        config = context.config
        if not _in_scope(context.path, config.hot_path_parts):
            return
        for node in ast.walk(context.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in config.hot_functions
            ):
                for anchor, what in _iter_allocations(node):
                    yield context.violation(
                        self,
                        anchor,
                        f"{what} on every call of hot function "
                        f"{node.name!r}; hoist it or keep an incremental "
                        "structure",
                    )

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        """Follow calls out of the hot functions (the interprocedural half).

        Roots — hot-named functions in hot modules — are covered by the
        per-file pass above; this pass flags the helpers they reach.
        """
        config = project.config
        if not config.hot_path_parts:
            return
        roots = {
            info.function_id
            for info in project.symbols.functions()
            if info.qualname.rsplit(".", 1)[-1] in config.hot_functions
            and _in_scope_module(project, info.module, config.hot_path_parts)
        }
        parents = project.calls.reachable_from(sorted(roots))
        for function_id in sorted(parents):
            if function_id in roots:
                continue
            info = project.symbols.function(function_id)
            module = project.module_of_function(function_id)
            if info is None or module is None:
                continue
            chain = chain_text(project.calls, parents, function_id)
            for anchor, what in _iter_allocations(info.node):
                yield project.violation(
                    self,
                    module,
                    anchor,
                    f"{what} on the per-event hot path: called from a hot "
                    f"function via {chain}; hoist it or keep an "
                    "incremental structure",
                )


def _iter_allocations(function: _FunctionNode) -> Iterator[Tuple[ast.AST, str]]:
    """Per-call container rebuilds in ``function``: (anchor node, what)."""
    # A genexp materialised by a builder call is reported once, at
    # the call (where a suppression pragma can live); remember the
    # wrapped expression so the walk does not re-flag it.
    claimed: Set[int] = set()
    for node in ast.walk(function):
        if isinstance(node, ast.Call):
            wrapped = _materialised_arguments(node)
            if wrapped:
                for argument in wrapped:
                    claimed.add(id(argument))
                yield (
                    node,
                    f"{_call_name(node)}(...) materialises a generator",
                )
        elif isinstance(node, _COMPREHENSIONS) and id(node) not in claimed:
            yield (
                node,
                f"{_KIND_LABELS[type(node)]} rebuilds a fresh container",
            )


def _in_scope(path: str, hot_path_parts: Sequence[str]) -> bool:
    """True when ``path`` lies in one of the configured hot modules."""
    normalized = path.replace("\\", "/")
    return any(part in normalized for part in hot_path_parts)


def _in_scope_module(
    project: ProjectContext, module: str, hot_path_parts: Sequence[str]
) -> bool:
    info = project.modules.get(module)
    if info is None:
        return False
    return _in_scope(info.path, hot_path_parts)


def _call_name(node: ast.Call) -> str:
    if isinstance(node.func, ast.Name):
        return node.func.id
    if isinstance(node.func, ast.Attribute):
        return node.func.attr
    return "<call>"


def _materialised_arguments(node: ast.Call) -> List[ast.expr]:
    """Comprehension/genexp arguments of a container-builder call."""
    if not (isinstance(node.func, ast.Name) and node.func.id in MATERIALISERS):
        return []
    return [
        argument
        for argument in node.args
        if isinstance(argument, (*_COMPREHENSIONS, ast.GeneratorExp))
    ]
