"""RPL005 — mutable default arguments.

A ``def f(items=[])`` default is evaluated once at function definition and
shared across every call — state leaks between scheduler runs and breaks
the determinism the experiments depend on.  Use ``None`` plus an explicit
default inside the body (or a frozen/immutable value).
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation

#: Zero/low-arg constructors whose result is mutable.
MUTABLE_CONSTRUCTORS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "OrderedDict", "Counter", "deque"}
)


@register_rule
class MutableDefaultRule(Rule):
    """Flag mutable default argument values."""
    code = "RPL005"
    name = "mutable-default-argument"
    summary = "no list/dict/set (or mutable constructor) default arguments"

    def check(self, context: FileContext) -> Iterator[Violation]:
        for node in ast.walk(context.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            arguments = node.args
            positional = [*arguments.posonlyargs, *arguments.args]
            for arg, default in zip(
                positional[len(positional) - len(arguments.defaults):],
                arguments.defaults,
            ):
                yield from self._check_default(context, node.name, arg, default)
            for arg, kw_default in zip(arguments.kwonlyargs, arguments.kw_defaults):
                if kw_default is not None:
                    yield from self._check_default(context, node.name, arg, kw_default)

    def _check_default(
        self,
        context: FileContext,
        function_name: str,
        arg: ast.arg,
        default: ast.expr,
    ) -> Iterator[Violation]:
        described = _describe_mutable(default)
        if described is not None:
            yield context.violation(
                self,
                default,
                f"parameter {arg.arg!r} of {function_name}() defaults to a "
                f"mutable {described}, shared across calls; use None and "
                "construct inside the body",
            )


def _describe_mutable(node: ast.expr) -> Optional[str]:
    if isinstance(node, ast.List):
        return "list literal"
    if isinstance(node, ast.Dict):
        return "dict literal"
    if isinstance(node, ast.Set):
        return "set literal"
    if isinstance(node, ast.ListComp):
        return "list comprehension"
    if isinstance(node, (ast.DictComp, ast.SetComp)):
        return "comprehension"
    if isinstance(node, ast.Call):
        func = node.func
        name = func.id if isinstance(func, ast.Name) else (
            func.attr if isinstance(func, ast.Attribute) else None
        )
        if name in MUTABLE_CONSTRUCTORS:
            return f"{name}() call"
    return None
