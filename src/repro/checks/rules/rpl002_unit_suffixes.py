"""RPL002 — unit-suffix discipline on public energy/power/time APIs.

Eq. 5/6 of the paper mix joules, watts, and seconds behind bare ``float``s;
the only defence the language offers is naming.  Every *public* function
parameter, return, or class attribute whose name says it carries a physical
quantity (``interval``, ``gap_energy``, ``idle_power`` ...) must make its
unit recoverable — either in the name itself (``gap_seconds``,
``energy_joules``, ``idle_watts``) or in the enclosing docstring (a unit
word such as "seconds", "joules", "watts").

The stems, approved suffixes, and accepted unit words all come from the
configurable :class:`~repro.checks.config.UnitVocabulary`.  Private names
(leading underscore) are exempt; ``__init__`` parameters are checked because
they are the public constructor surface, with the class docstring accepted
as documentation.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.checks.config import UnitVocabulary
from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation

#: Numeric annotation identifiers that can carry a physical quantity.
NUMERIC_ANNOTATIONS = frozenset({"float", "int", "complex", "Number"})


@register_rule
class UnitSuffixRule(Rule):
    """Require unit suffixes or documented units on quantity names."""
    code = "RPL002"
    name = "unit-suffix-discipline"
    summary = "public energy/power/time names need a unit suffix or documented units"

    def check(self, context: FileContext) -> Iterator[Violation]:
        vocabulary = context.config.vocabulary
        for function, doc in _public_functions(context.tree):
            yield from self._check_function(context, vocabulary, function, doc)
        for class_node in context.tree.body:
            if isinstance(class_node, ast.ClassDef) and not class_node.name.startswith("_"):
                yield from self._check_class_attributes(context, vocabulary, class_node)

    def _check_function(
        self,
        context: FileContext,
        vocabulary: UnitVocabulary,
        function: ast.FunctionDef,
        doc: Optional[str],
    ) -> Iterator[Violation]:
        arguments = function.args
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
            if arg.arg in ("self", "cls") or arg.arg.startswith("_"):
                continue
            yield from self._check_name(
                context, vocabulary, arg, arg.arg, arg.annotation, doc,
                f"parameter {arg.arg!r} of {function.name}()",
            )
        if function.name != "__init__":
            yield from self._check_name(
                context, vocabulary, function, function.name, function.returns, doc,
                f"function {function.name}()",
            )

    def _check_class_attributes(
        self,
        context: FileContext,
        vocabulary: UnitVocabulary,
        class_node: ast.ClassDef,
    ) -> Iterator[Violation]:
        doc = ast.get_docstring(class_node)
        for statement in class_node.body:
            if not isinstance(statement, ast.AnnAssign):
                continue
            target = statement.target
            if not isinstance(target, ast.Name) or target.id.startswith("_"):
                continue
            yield from self._check_name(
                context, vocabulary, statement, target.id, statement.annotation, doc,
                f"attribute {class_node.name}.{target.id}",
            )

    def _check_name(
        self,
        context: FileContext,
        vocabulary: UnitVocabulary,
        node: ast.AST,
        name: str,
        annotation: Optional[ast.expr],
        doc: Optional[str],
        described: str,
    ) -> Iterator[Violation]:
        domains = vocabulary.matching_domains(name)
        if not domains:
            return
        if annotation is not None and not _is_quantity_annotation(annotation):
            return
        for key in domains:
            domain = vocabulary.domains[key]
            if domain.name_carries_unit(name) or domain.documented_in(doc):
                return
        suffixes = ", ".join(
            vocabulary.domains[key].suffixes[0] for key in domains
        )
        yield context.violation(
            self,
            node,
            f"{described} carries a physical quantity but neither its name "
            f"(suffix such as {suffixes}) nor the docstring states the unit",
        )


def _public_functions(
    tree: ast.Module,
) -> List[Tuple[ast.FunctionDef, Optional[str]]]:
    """Public module functions and methods, paired with their docstring.

    ``__init__`` rides along with the class docstring as fallback because
    its parameters are the public construction API.  A method without a
    docstring inherits the docstring of the same-named method in a base
    class defined in the same module — an override of a documented
    abstract method need not restate the unit.
    """
    classes = {
        node.name: node for node in tree.body if isinstance(node, ast.ClassDef)
    }
    found: List[Tuple[ast.FunctionDef, Optional[str]]] = []
    for node in tree.body:
        if isinstance(node, ast.FunctionDef) and not node.name.startswith("_"):
            found.append((node, ast.get_docstring(node)))
        elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
            class_doc = ast.get_docstring(node)
            for statement in node.body:
                if not isinstance(statement, ast.FunctionDef):
                    continue
                if statement.name == "__init__":
                    doc = ast.get_docstring(statement) or class_doc
                    found.append((statement, doc))
                elif not statement.name.startswith("_"):
                    doc = ast.get_docstring(statement) or _inherited_docstring(
                        classes, node, statement.name
                    )
                    found.append((statement, doc))
    return found


def _inherited_docstring(
    classes: "dict[str, ast.ClassDef]", class_node: ast.ClassDef, method: str
) -> Optional[str]:
    """Docstring of ``method`` along the same-module base-class chain."""
    seen = {class_node.name}
    queue = [class_node]
    while queue:
        current = queue.pop(0)
        for base in current.bases:
            name = base.id if isinstance(base, ast.Name) else None
            if name is None or name in seen or name not in classes:
                continue
            seen.add(name)
            base_class = classes[name]
            for statement in base_class.body:
                if (
                    isinstance(statement, ast.FunctionDef)
                    and statement.name == method
                ):
                    doc = ast.get_docstring(statement)
                    if doc:
                        return doc
            queue.append(base_class)
    return None


def _is_quantity_annotation(annotation: ast.expr) -> bool:
    """True when the annotated value could be a bare numeric quantity.

    ``float`` / ``int`` anywhere in the annotation (``Optional[float]``,
    ``List[float]``) counts; an annotation naming only non-numeric types
    (``-> CostFunction``, ``requests: Sequence[Request]``) does not.
    Unparseable or empty annotations are treated as quantities, erring
    toward checking.
    """
    if isinstance(annotation, ast.Constant):
        if annotation.value is None:
            return False
        if isinstance(annotation.value, str):
            try:
                annotation = ast.parse(annotation.value, mode="eval").body
            except SyntaxError:
                return True
    names = {
        child.id if isinstance(child, ast.Name) else child.attr
        for child in ast.walk(annotation)
        if isinstance(child, (ast.Name, ast.Attribute))
    }
    if names & NUMERIC_ANNOTATIONS:
        return True
    return not names
