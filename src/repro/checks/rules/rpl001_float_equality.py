"""RPL001 — float equality on time/energy-suffixed expressions.

Simulated clocks and integrated energies are floats accumulated through
arithmetic (Eq. 5/6 of the paper); exact ``==``/``!=`` on them is almost
always a latent bug — two event times that are "the same instant" can differ
in the last ulp after a different summation order.  Compare with ``<``-style
ordering, ``math.isclose``, or an explicit tolerance instead.

The rule fires on ``==`` / ``!=`` comparisons where either operand is a name
or attribute whose snake_case components contain a time/energy stem from the
unit vocabulary (``now``, ``t_last``, ``gap_energy``, ``arrival_time`` ...).
Comparisons against ``None`` are ignored (identity checks are fine), as are
comparisons between two integer literals.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional

from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation

#: Extra identifiers that denote simulated-clock values beyond the
#: vocabulary stems (``now`` is the canonical SystemView clock property).
CLOCK_NAMES = frozenset({"now", "t", "ti", "tlast", "t_last"})

_QUANTITY_DOMAINS = ("time", "energy")


@register_rule
class FloatEqualityRule(Rule):
    """Flag ``==`` / ``!=`` between time/energy-carrying expressions."""
    code = "RPL001"
    name = "float-time-equality"
    summary = "no == / != on simulated-time or energy expressions"

    def check(self, context: FileContext) -> Iterator[Violation]:
        vocabulary = context.config.vocabulary
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.Compare):
                continue
            operands = [node.left, *node.comparators]
            for op, left, right in zip(node.ops, operands, operands[1:]):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                if _is_none(left) or _is_none(right):
                    continue
                for side in (left, right):
                    name = _terminal_name(side)
                    if name is None:
                        continue
                    if name in CLOCK_NAMES or any(
                        domain in _QUANTITY_DOMAINS
                        for domain in vocabulary.matching_domains(name)
                    ):
                        yield context.violation(
                            self,
                            node,
                            f"float equality on {name!r}: simulated time/energy "
                            "must be compared with ordering or a tolerance "
                            "(math.isclose), never == / !=",
                        )
                        break


def _terminal_name(node: ast.expr) -> Optional[str]:
    """The rightmost identifier of a name/attribute chain, lowered."""
    if isinstance(node, ast.Name):
        return node.id.lower()
    if isinstance(node, ast.Attribute):
        return node.attr.lower()
    return None


def _is_none(node: ast.expr) -> bool:
    return isinstance(node, ast.Constant) and node.value is None
