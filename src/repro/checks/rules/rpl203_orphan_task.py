"""RPL203 — fire-and-forget ``create_task`` without a retained reference.

The event loop keeps only a *weak* reference to tasks: a
``asyncio.create_task(pump())`` whose return value is dropped can be
garbage collected mid-flight, killing the coroutine at an arbitrary await
point with no error.  The asyncio docs require callers to hold a
reference for the task's lifetime (and the serving layer's pump task does
exactly that).

Flagged: ``asyncio.create_task(...)`` / ``asyncio.ensure_future(...)``
(alias-expanded) and any ``<obj>.create_task(...)`` /
``<obj>.ensure_future(...)`` method call — loop objects reached through
attributes are recognised by method name — appearing as a bare expression
statement.  Assigning the task, appending it to a collection, awaiting
it, or passing it on all retain a reference and pass.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.checks.analysis.callgraph import display_function
from repro.checks.analysis.project import ProjectContext
from repro.checks.analysis.symbols import call_name_parts, canonical_call_name
from repro.checks.registry import ProjectRule, register_rule
from repro.checks.violation import Violation

#: Method names that spawn a task on some loop-like receiver.
TASK_SPAWNERS = frozenset({"create_task", "ensure_future"})


@register_rule
class OrphanTaskRule(ProjectRule):
    """Flag task spawns whose handle is immediately discarded."""

    code = "RPL203"
    name = "orphan-task"
    summary = "no create_task/ensure_future with a discarded task handle"

    def check_project(self, project: ProjectContext) -> Iterator[Violation]:
        for info in project.symbols.functions():
            module = project.module_of_function(info.function_id)
            if module is None:
                continue
            symbols = project.symbols.modules[info.module]
            for statement in _own_statements(info.node):
                if not isinstance(statement, ast.Expr):
                    continue
                call = statement.value
                # ``await asyncio.ensure_future(...)`` retains implicitly.
                if not isinstance(call, ast.Call):
                    continue
                parts = call_name_parts(call)
                if parts is None or parts[-1] not in TASK_SPAWNERS:
                    continue
                name = canonical_call_name(symbols, call) or ".".join(parts)
                yield project.violation(
                    self,
                    module,
                    statement,
                    f"{name}(...) in {display_function(info.function_id)} "
                    "discards the task handle — the loop holds only a weak "
                    "reference and the task can be garbage collected "
                    "mid-flight; keep the returned task",
                )


def _own_statements(function: ast.AST) -> Iterator[ast.stmt]:
    """Every statement in ``function``'s own body, skipping nested defs."""
    stack: List[ast.AST] = list(getattr(function, "body", []))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            continue
        if isinstance(node, ast.stmt):
            yield node
        stack.extend(ast.iter_child_nodes(node))