"""RPL004 — scheduler contract.

Two statically checkable halves of the contract in
:mod:`repro.core.scheduler`:

* a concrete class deriving directly from ``OnlineScheduler`` /
  ``BatchScheduler`` / ``OfflineScheduler`` must implement that family's
  decision method (``choose`` / ``choose_batch`` / ``schedule``);
* scheduler code must never mutate a :class:`~repro.types.Request` — the
  dataclass is frozen precisely because requests are shared between the
  engine, the assignment, and the report, so the rule flags attribute
  assignments (and ``object.__setattr__``) on request-typed values inside
  scheduler classes.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.checks.registry import FileContext, Rule, register_rule
from repro.checks.violation import Violation


@register_rule
class SchedulerContractRule(Rule):
    """Enforce scheduler family methods and Request immutability."""
    code = "RPL004"
    name = "scheduler-contract"
    summary = "schedulers implement their family method and never mutate Requests"

    def check(self, context: FileContext) -> Iterator[Violation]:
        contracts = context.config.scheduler_contracts
        for node in ast.walk(context.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            base_names = {_base_name(base) for base in node.bases} - {None}
            contract_bases = sorted(name for name in base_names if name in contracts)
            is_scheduler = bool(contract_bases) or any(
                name is not None and name.endswith("Scheduler") for name in base_names
            )
            if contract_bases and not _is_abstract(node):
                defined = {
                    member.name
                    for member in node.body
                    if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef))
                }
                for base in contract_bases:
                    required = contracts[base]
                    if required not in defined:
                        yield context.violation(
                            self,
                            node,
                            f"class {node.name} subclasses {base} but does not "
                            f"implement {required}()",
                        )
            if is_scheduler:
                yield from self._check_request_mutation(context, node)

    def _check_request_mutation(
        self, context: FileContext, class_node: ast.ClassDef
    ) -> Iterator[Violation]:
        for function in ast.walk(class_node):
            if not isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            request_names = self._request_parameter_names(context, function)
            for node in ast.walk(function):
                targets = []
                if isinstance(node, ast.Assign):
                    targets = node.targets
                elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
                    targets = [node.target]
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id in request_names
                    ):
                        yield context.violation(
                            self,
                            node,
                            f"scheduler mutates frozen Request "
                            f"({target.value.id}.{target.attr} = ...); requests "
                            "are shared and immutable",
                        )
                if (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "__setattr__"
                    and isinstance(node.func.value, ast.Name)
                    and node.func.value.id == "object"
                ):
                    yield context.violation(
                        self,
                        node,
                        "scheduler bypasses Request immutability with "
                        "object.__setattr__",
                    )

    def _request_parameter_names(
        self, context: FileContext, function: ast.AST
    ) -> Set[str]:
        assert isinstance(function, (ast.FunctionDef, ast.AsyncFunctionDef))
        names = set(context.config.request_names)
        arguments = function.args
        for arg in (*arguments.posonlyargs, *arguments.args, *arguments.kwonlyargs):
            annotation = arg.annotation
            if annotation is not None and _base_name(annotation) == "Request":
                names.add(arg.arg)
        return names


def _base_name(node: ast.expr) -> Optional[str]:
    """Terminal identifier of a base-class or annotation expression."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Subscript):
        return _base_name(node.value)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value.rsplit(".", 1)[-1]
    return None


def _is_abstract(class_node: ast.ClassDef) -> bool:
    """ABC bases, ABCMeta metaclass, or any @abstractmethod member."""
    for base in class_node.bases:
        if _base_name(base) in {"ABC", "Protocol"}:
            return True
    for keyword in class_node.keywords:
        if keyword.arg == "metaclass" and _base_name(keyword.value) == "ABCMeta":
            return True
    for member in class_node.body:
        if isinstance(member, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in member.decorator_list:
                if _base_name(decorator) in {"abstractmethod", "abstractproperty"}:
                    return True
    return False
