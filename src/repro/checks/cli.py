"""Argument handling for ``repro-storage lint`` / ``python -m repro.checks``."""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
from typing import Callable, Dict, List, Optional

from repro.checks.baseline import (
    BASELINE_FILENAME,
    Baseline,
    BaselineError,
    apply_baseline,
    find_baseline,
    load_baseline,
    normalise_path,
    write_baseline,
)
from repro.checks.config import CheckConfig
from repro.checks.registry import all_rules
from repro.checks.reporting import render_json, render_sarif, render_text
from repro.checks.runner import CheckReport, check_paths

#: What a bare ``repro-storage lint`` checks: the library, not fixtures.
DEFAULT_PATHS = ("src",)

_RENDERERS: Dict[str, Callable[[CheckReport], str]] = {
    "text": render_text,
    "json": render_json,
    "sarif": render_sarif,
}


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=tuple(_RENDERERS),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated RPL codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated RPL codes to skip",
    )
    parser.add_argument(
        "--changed",
        action="store_true",
        help="report findings only for files changed versus git HEAD "
        "(the whole-program analysis still sees every file)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline of accepted findings (default: nearest "
        f"{BASELINE_FILENAME} above the first lint path)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file; report every finding",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings into the baseline file and exit "
        "(justifications of entries that still match are kept)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed ``args``; returns exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<24} {rule.summary}")
        return 0
    known = {rule.code for rule in all_rules()}
    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    unknown = sorted((select | ignore) - known)
    if unknown:
        print(f"reprolint: unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    paths = args.paths or list(DEFAULT_PATHS)
    missing = sorted(path for path in paths if not os.path.exists(path))
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    restrict_to: Optional[List[str]] = None
    if args.changed:
        restrict_to = changed_files()
        if restrict_to is None:
            print(
                "reprolint: --changed requires a git checkout "
                "(git diff against HEAD failed)",
                file=sys.stderr,
            )
            return 2
        if not restrict_to:
            print("reprolint: no Python files changed versus HEAD")
            return 0
    config = CheckConfig(select=select, ignore=ignore)
    report = check_paths(paths, config, restrict_to=restrict_to)

    baseline_path = _baseline_path(args, paths)
    if args.write_baseline:
        target = baseline_path or BASELINE_FILENAME
        existing = _load_quietly(target)
        written = write_baseline(report, target, existing=existing)
        print(
            f"reprolint: wrote {len(written.entries)} accepted finding(s) "
            f"to {target}"
        )
        return 0

    stale_failure = False
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = load_baseline(baseline_path)
        except BaselineError as exc:
            print(f"reprolint: {exc}", file=sys.stderr)
            return 2
        outcome = apply_baseline(report, baseline)
        report = outcome.report
        stale = outcome.stale
        if restrict_to is not None:
            # A restricted run only reports findings for the changed files;
            # an entry for an *unchanged* file is unproven, not stale.
            changed = {
                normalise_path(path, baseline.base_dir) for path in restrict_to
            }
            stale = tuple(entry for entry in stale if entry.path in changed)
        for entry in stale:
            print(
                f"reprolint: stale baseline entry (fixed? remove it from "
                f"{baseline_path}): {entry.format()}",
                file=sys.stderr,
            )
        stale_failure = bool(stale)

    print(_RENDERERS[args.format](report))
    if stale_failure:
        return 1
    return report.exit_code


def run_lint(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.checks``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="reprolint: domain-aware static analysis "
        "(unit discipline, determinism, asyncio and layering contracts)",
    )
    add_lint_arguments(parser)
    return run_lint_args(parser.parse_args(argv))


def changed_files() -> Optional[List[str]]:
    """Python files changed versus HEAD (tracked edits plus untracked).

    Paths come back relative to the current directory, ready to feed
    ``check_paths(restrict_to=...)``.  Returns ``None`` when git is
    unavailable or the working directory is not inside a checkout.
    """
    toplevel = _git(["rev-parse", "--show-toplevel"])
    if toplevel is None:
        return None
    root = toplevel.strip()
    edited = _git(["diff", "--name-only", "HEAD", "--"])
    untracked = _git(["ls-files", "--others", "--exclude-standard"])
    if edited is None or untracked is None:
        return None
    names = [line for line in (edited + untracked).splitlines() if line.strip()]
    files: List[str] = []
    for name in sorted(set(names)):
        if not name.endswith(".py"):
            continue
        absolute = os.path.join(root, name)
        if os.path.exists(absolute):  # deleted files cannot be linted
            files.append(os.path.relpath(absolute))
    return files


def _git(arguments: List[str]) -> Optional[str]:
    try:
        completed = subprocess.run(
            ["git", *arguments],
            capture_output=True,
            text=True,
            check=True,
        )
    except (OSError, subprocess.CalledProcessError):
        return None
    return completed.stdout


def _baseline_path(args: argparse.Namespace, paths: List[str]) -> Optional[str]:
    """The baseline file in effect: explicit flag, else the upward walk."""
    if args.no_baseline and not args.write_baseline:
        return None
    if args.baseline is not None:
        return args.baseline
    return find_baseline(paths[0])


def _load_quietly(path: str) -> Optional[Baseline]:
    """Existing baseline for justification carry-over; None when absent/bad."""
    if not os.path.isfile(path):
        return None
    try:
        return load_baseline(path)
    except BaselineError:
        return None


def _parse_codes(raw: str) -> "frozenset[str]":
    return frozenset(code.strip().upper() for code in raw.split(",") if code.strip())


if __name__ == "__main__":
    sys.exit(run_lint())
