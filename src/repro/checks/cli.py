"""Argument handling for ``repro-storage lint`` / ``python -m repro.checks``."""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.checks.config import CheckConfig
from repro.checks.registry import all_rules
from repro.checks.reporting import render_json, render_text
from repro.checks.runner import check_paths

#: What a bare ``repro-storage lint`` checks: the library, not fixtures.
DEFAULT_PATHS = ("src",)


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach lint options to ``parser`` (shared with the main CLI)."""
    parser.add_argument(
        "paths",
        nargs="*",
        help=f"files or directories to check (default: {' '.join(DEFAULT_PATHS)})",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select",
        default="",
        metavar="CODES",
        help="comma-separated RPL codes to run exclusively",
    )
    parser.add_argument(
        "--ignore",
        default="",
        metavar="CODES",
        help="comma-separated RPL codes to skip",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint_args(args: argparse.Namespace) -> int:
    """Execute a lint run described by parsed ``args``; returns exit code."""
    if args.list_rules:
        for rule in all_rules():
            print(f"{rule.code}  {rule.name:<24} {rule.summary}")
        return 0
    known = {rule.code for rule in all_rules()}
    select = _parse_codes(args.select)
    ignore = _parse_codes(args.ignore)
    unknown = sorted((select | ignore) - known)
    if unknown:
        print(f"reprolint: unknown rule code(s): {', '.join(unknown)}", file=sys.stderr)
        return 2
    paths = args.paths or list(DEFAULT_PATHS)
    missing = sorted(path for path in paths if not os.path.exists(path))
    if missing:
        print(f"reprolint: no such path: {', '.join(missing)}", file=sys.stderr)
        return 2
    config = CheckConfig(select=select, ignore=ignore)
    report = check_paths(paths, config)
    renderer = render_json if args.format == "json" else render_text
    print(renderer(report))
    return report.exit_code


def run_lint(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point for ``python -m repro.checks``."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.checks",
        description="reprolint: domain-aware static analysis "
        "(unit discipline, determinism, scheduler contracts)",
    )
    add_lint_arguments(parser)
    return run_lint_args(parser.parse_args(argv))


def _parse_codes(raw: str) -> "frozenset[str]":
    return frozenset(code.strip().upper() for code in raw.split(",") if code.strip())


if __name__ == "__main__":
    sys.exit(run_lint())
