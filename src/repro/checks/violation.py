"""The violation record produced by every rule."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: a rule fired at a source location.

    Ordering is ``(path, line, column, code)`` so reports are stable across
    runs regardless of rule execution order — determinism the linter demands
    of the code it checks, applied to itself.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def format(self) -> str:
        """GCC-style one-line rendering, e.g. ``a.py:3:7: RPL005 ...``."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-ready mapping used by the JSON reporter."""
        return {
            "path": str(self.path),
            "line": self.line,
            "column": self.column,
            "code": self.code,
            "message": self.message,
        }
