"""``python -m repro.checks`` — run reprolint standalone."""

from __future__ import annotations

import sys

from repro.checks.cli import run_lint

if __name__ == "__main__":
    sys.exit(run_lint())
