"""``# reprolint: disable=...`` pragma handling.

Two pragma forms, both scanned with :mod:`tokenize` so strings that merely
look like comments never count:

* line pragma — ``x = 1  # reprolint: disable=RPL001,RPL005`` suppresses the
  listed codes (or ``all``) on that physical line;
* file pragma — a comment-only line ``# reprolint: disable-file=RPL002``
  suppresses the listed codes for the whole module.
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Set

from repro.checks.violation import Violation

_PRAGMA = re.compile(
    r"#\s*reprolint:\s*(?P<kind>disable(?:-file)?)\s*=\s*(?P<codes>[A-Za-z0-9,\s]+)"
)

ALL_CODES = "all"


@dataclass(frozen=True)
class SuppressionIndex:
    """Per-file map of suppressed codes, by line and module-wide."""

    file_codes: FrozenSet[str] = frozenset()
    line_codes: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def is_suppressed(self, violation: Violation) -> bool:
        """True when a pragma silences ``violation``."""
        for codes in (self.file_codes, self.line_codes.get(violation.line, frozenset())):
            if ALL_CODES in codes or violation.code in codes:
                return True
        return False


def scan_pragmas(source: str) -> SuppressionIndex:
    """Collect disable pragmas from ``source``.

    Unparseable sources yield an empty index — the runner reports a syntax
    error long before suppression matters.
    """
    file_codes: Set[str] = set()
    line_codes: Dict[int, Set[str]] = {}
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return SuppressionIndex()
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _PRAGMA.search(token.string)
        if match is None:
            continue
        codes = {
            code.strip().upper() if code.strip().lower() != ALL_CODES else ALL_CODES
            for code in match.group("codes").split(",")
            if code.strip()
        }
        if match.group("kind") == "disable-file":
            file_codes.update(codes)
        else:
            line_codes.setdefault(token.start[0], set()).update(codes)
    return SuppressionIndex(
        file_codes=frozenset(file_codes),
        line_codes={line: frozenset(codes) for line, codes in line_codes.items()},
    )
