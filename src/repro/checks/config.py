"""Configuration for the reprolint pass.

The unit vocabulary drives the two unit-discipline rules (RPL001/RPL002):
it names the *stems* that mark an identifier as carrying a physical quantity
(time, energy, power), the *suffixes* that make the unit explicit in the
name itself, and the *unit words* that count as documentation when they
appear in a docstring.  Projects with different conventions can swap the
vocabulary without touching the rules.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Mapping, Optional, Tuple


@dataclass(frozen=True)
class UnitDomain:
    """One physical quantity: how names betray it and how units satisfy it.

    Attributes:
        stems: Lower-case words that mark an identifier as carrying this
            quantity (matched as whole ``snake_case`` components).
        suffixes: Name endings that make the unit explicit (``gap_seconds``).
        unit_words: Words whose presence in a docstring counts as
            documenting the unit (``"Gap length in seconds."``).  The
            words "fraction", "ratio", and "unitless" are accepted for
            every domain — an explicitly unitless quantity (a normalized
            energy, a reduction fraction) is documented too.
    """

    stems: Tuple[str, ...]
    suffixes: Tuple[str, ...]
    unit_words: Tuple[str, ...]

    def name_matches(self, name: str) -> bool:
        """True when a snake_case component of ``name`` is a domain stem."""
        parts = name.lower().split("_")
        return any(part in self.stems or part.rstrip("s") in self.stems for part in parts)

    def name_carries_unit(self, name: str) -> bool:
        """True when ``name`` ends in an approved unit suffix."""
        lowered = name.lower()
        return any(
            lowered == suffix.lstrip("_") or lowered.endswith(suffix)
            for suffix in self.suffixes
        )

    def documented_in(self, docstring: Optional[str]) -> bool:
        """True when ``docstring`` mentions one of the domain's unit words."""
        if not docstring:
            return False
        lowered = docstring.lower()
        return any(
            word in lowered for word in (*self.unit_words, *UNITLESS_WORDS)
        )


@dataclass(frozen=True)
class UnitVocabulary:
    """The unit domains reprolint knows about (paper Table 1 quantities)."""

    domains: Mapping[str, UnitDomain] = field(
        default_factory=lambda: dict(DEFAULT_DOMAINS)
    )

    def matching_domains(self, name: str) -> Tuple[str, ...]:
        """Domains whose stems appear in ``name``, in declaration order."""
        return tuple(
            key for key, domain in self.domains.items() if domain.name_matches(name)
        )


#: Docstring words declaring a quantity explicitly unitless (any domain).
UNITLESS_WORDS: Tuple[str, ...] = ("fraction", "ratio", "unitless", "normalized")

DEFAULT_DOMAINS: Dict[str, UnitDomain] = {
    "time": UnitDomain(
        stems=("time", "interval", "duration", "deadline", "timeout", "elapsed", "gap"),
        suffixes=("_seconds", "_secs", "_sec", "_s", "_ms", "_us", "_ns"),
        unit_words=("second", "seconds", "secs", "millisecond", "milliseconds", "ms"),
    ),
    "energy": UnitDomain(
        stems=("energy", "joule", "joules"),
        suffixes=("_joules", "_j", "_wh", "_kwh"),
        unit_words=("joule", "joules", "watt-hour", "watt-hours", "kwh"),
    ),
    "power": UnitDomain(
        stems=("power", "watt", "watts"),
        suffixes=("_watts", "_w", "_kw"),
        unit_words=("watt", "watts", "kilowatt", "kilowatts", "kw"),
    ),
}

#: Scheduler base classes and the method each contract requires (RPL004).
DEFAULT_SCHEDULER_CONTRACTS: Dict[str, str] = {
    "OnlineScheduler": "choose",
    "BatchScheduler": "choose_batch",
    "OfflineScheduler": "schedule",
}

#: ``numpy.random`` attributes that are seedable constructors, not
#: module-level draws from the hidden global state (RPL003).
SEEDABLE_NUMPY_ATTRS: FrozenSet[str] = frozenset(
    {"default_rng", "Generator", "SeedSequence", "BitGenerator", "PCG64", "Philox", "MT19937", "RandomState"}
)

#: Functions on the per-event/per-request hot path (RPL007). A fresh
#: container built inside one of these runs once per simulated event —
#: tens of thousands of times per run — so RPL007 flags
#: comprehension-based rebuilding there. Method *names*, matched in the
#: modules selected by :data:`DEFAULT_HOT_PATH_PARTS`.
DEFAULT_HOT_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "choose",
        "cost",
        "energy_cost",
        "marginal_energy",
        "locations",
        "available_locations",
        "submit",
        "step",
        "post",
        "schedule_at",
        "schedule_after",
        "transition",
        "_admit",
        "_dispatch",
        "_on_arrival",
        "_fix_head",
        "_note_cancel",
        "_service_loop",
    }
)

#: Path fragments (``/``-separated) selecting the modules RPL007 scans:
#: the simulation core and the scheduler layer.
DEFAULT_HOT_PATH_PARTS: Tuple[str, ...] = ("repro/sim", "repro/core")

#: Module-name prefixes rooting the determinism scope (RPL101/RPL102): the
#: packages whose dispatch paths must be byte-identically replayable.
DEFAULT_DETERMINISM_SCOPE: Tuple[str, ...] = (
    "repro.sim",
    "repro.core",
    "repro.serve",
    "repro.tape",
)

#: Canonical dotted names of calls that read the wall clock (RPL101).
#: Matched after import-alias expansion, so ``from time import time`` and
#: ``import time as t`` are both seen.
DEFAULT_WALL_CLOCK_CALLS: FrozenSet[str] = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "datetime.datetime.today",
        "datetime.date.today",
    }
)

#: Canonical dotted names of RNG constructors whose *first argument* is the
#: seed; passing a maybe-``None`` seed through falls back to OS entropy
#: (RPL102).
DEFAULT_RNG_CONSTRUCTORS: FrozenSet[str] = frozenset(
    {
        "random.Random",
        "numpy.random.default_rng",
        "numpy.random.RandomState",
        "numpy.random.SeedSequence",
    }
)

#: Function/method names that serialise reports and documents — the roots
#: of the RPL103 scope (unordered iteration feeding serialisation).
DEFAULT_SERIALISATION_FUNCTIONS: FrozenSet[str] = frozenset(
    {
        "as_dict",
        "to_dict",
        "as_payload",
        "payload",
        "serialize",
        "serialise",
        "as_json",
        "to_json",
        "document",
        "serve_document",
        "render",
        "summary",
    }
)

#: Canonical dotted names of calls that block the thread — forbidden inside
#: (or reachable from) ``async def`` bodies (RPL201).
DEFAULT_BLOCKING_CALLS: FrozenSet[str] = frozenset(
    {
        "time.sleep",
        "subprocess.run",
        "subprocess.call",
        "subprocess.check_call",
        "subprocess.check_output",
        "subprocess.Popen",
        "os.system",
        "os.popen",
        "os.waitpid",
        "socket.create_connection",
        "urllib.request.urlopen",
        "requests.get",
        "requests.post",
        "requests.request",
        "input",
    }
)


@dataclass(frozen=True)
class LayeringContract:
    """One RPL301 architecture constraint on a package's imports.

    Either ``forbidden`` lists package prefixes the ``package`` must never
    import, or ``allowed`` lists the *only* project packages it may import
    (itself always implicitly allowed).  ``reason`` is echoed in the
    finding so the contract is self-explaining at the violation site.
    """

    package: str
    reason: str
    forbidden: Tuple[str, ...] = ()
    allowed: Optional[Tuple[str, ...]] = None


#: The repo's layering contract (RPL301).  The scheduler and simulation
#: cores sit below the serving/experiment/tooling layers; the lint pass is
#: hermetic apart from the shared exception/type foundation.
DEFAULT_LAYERING_CONTRACTS: Tuple[LayeringContract, ...] = (
    LayeringContract(
        package="repro.core",
        forbidden=(
            "repro.serve",
            "repro.experiments",
            "repro.cli",
            "repro.perf",
            "repro.checks",
        ),
        reason="the scheduler core sits below serving/experiments/tooling",
    ),
    LayeringContract(
        package="repro.sim",
        forbidden=(
            "repro.serve",
            "repro.experiments",
            "repro.cli",
            "repro.perf",
            "repro.checks",
        ),
        reason="the simulation core sits below serving/experiments/tooling",
    ),
    LayeringContract(
        package="repro.disk",
        forbidden=(
            "repro.serve",
            "repro.experiments",
            "repro.cli",
            "repro.perf",
            "repro.checks",
        ),
        reason="the disk device model sits below serving/experiments/tooling",
    ),
    LayeringContract(
        package="repro.tape",
        forbidden=(
            "repro.serve",
            "repro.experiments",
            "repro.cli",
            "repro.perf",
            "repro.checks",
        ),
        reason="the tape device model sits below serving/experiments/tooling",
    ),
    LayeringContract(
        package="repro.checks",
        allowed=("repro.errors", "repro.types"),
        reason="the lint pass must not depend on the domain it checks",
    ),
)


@dataclass(frozen=True)
class CheckConfig:
    """Everything a rule may consult while checking a module.

    Attributes:
        vocabulary: Unit stems/suffixes for RPL001/RPL002.
        select: When non-empty, only these codes run.
        ignore: Codes disabled globally (after ``select``).
        scheduler_contracts: Base-class name -> required method (RPL004).
        request_names: Parameter names treated as frozen ``Request``
            instances for the mutation check (RPL004).
        hot_functions: Function/method names treated as per-event hot
            paths by RPL007.
        hot_path_parts: Path fragments selecting the modules RPL007
            scans (empty disables the rule everywhere).
        determinism_scope: Module-name prefixes rooting the RPL101/RPL102
            reachability walk (empty disables both rules).
        wall_clock_calls: Canonical dotted call names that read the wall
            clock (RPL101).
        rng_constructors: Canonical dotted names of seed-first RNG
            constructors (RPL102).
        serialisation_functions: Function names rooting the RPL103
            serialisation scope.
        blocking_calls: Canonical dotted call names that block the event
            loop (RPL201).
        layering_contracts: Package import constraints (RPL301).
    """

    vocabulary: UnitVocabulary = field(default_factory=UnitVocabulary)
    select: FrozenSet[str] = frozenset()
    ignore: FrozenSet[str] = frozenset()
    scheduler_contracts: Mapping[str, str] = field(
        default_factory=lambda: dict(DEFAULT_SCHEDULER_CONTRACTS)
    )
    request_names: Tuple[str, ...] = ("request", "req")
    hot_functions: FrozenSet[str] = DEFAULT_HOT_FUNCTIONS
    hot_path_parts: Tuple[str, ...] = DEFAULT_HOT_PATH_PARTS
    determinism_scope: Tuple[str, ...] = DEFAULT_DETERMINISM_SCOPE
    wall_clock_calls: FrozenSet[str] = DEFAULT_WALL_CLOCK_CALLS
    rng_constructors: FrozenSet[str] = DEFAULT_RNG_CONSTRUCTORS
    serialisation_functions: FrozenSet[str] = DEFAULT_SERIALISATION_FUNCTIONS
    blocking_calls: FrozenSet[str] = DEFAULT_BLOCKING_CALLS
    layering_contracts: Tuple[LayeringContract, ...] = DEFAULT_LAYERING_CONTRACTS

    def rule_enabled(self, code: str) -> bool:
        """Apply ``select`` then ``ignore`` to one rule code."""
        if self.select and code not in self.select:
            return False
        return code not in self.ignore
