"""Event-driven storage simulation (OMNeT++/Disksim substitute)."""

from repro.sim.config import SimulationConfig
from repro.sim.engine import EventHandle, SimulationEngine
from repro.report import MetricsCollector, SimulationReport, percentile
from repro.sim.runner import always_on_baseline, run_offline, simulate
from repro.sim.storage import StorageSystem

__all__ = [
    "EventHandle",
    "MetricsCollector",
    "SimulationConfig",
    "SimulationEngine",
    "SimulationReport",
    "StorageSystem",
    "always_on_baseline",
    "percentile",
    "run_offline",
    "simulate",
]
