"""Deterministic discrete-event simulation engine (OMNeT++ substitute).

The engine is a binary-heap event queue with a monotonic clock. Events are
plain callables; insertion order breaks timestamp ties so runs are fully
deterministic. Two cancellation mechanisms exist:

* :class:`EventHandle` — the classic lazy cancel: the heap entry stays and
  is skipped on pop. The engine counts dead entries and compacts the heap
  in place when the dead fraction crosses a threshold, so pathological
  schedule/cancel churn cannot grow the heap without bound.
* :class:`ReusableTimer` — a slotted, reusable timer for the
  cancel/re-arm pattern of the 2CPM idleness timer. It keeps at most one
  heap entry alive: cancelling and re-arming to a later deadline are plain
  field writes (no heap traffic), and the single entry lazily migrates to
  the current deadline when it surfaces at the head of the heap.

Both paths preserve event ordering exactly: live events always fire in
``(time, insertion sequence)`` order, and ``events_processed`` counts only
fired callbacks, so results are byte-identical whether compaction or timer
reuse kick in or not.
"""

from __future__ import annotations

import heapq
import itertools
from math import inf
from typing import Any, Callable, List, Optional, Sequence, Tuple, Union

from repro.errors import SimulationError

EventCallback = Callable[[], None]

#: Bulk-arrival stream accepted by :meth:`SimulationEngine.run`:
#: ``(times, payloads, callback)`` with ``times`` sorted ascending and
#: ``callback(payload)`` fired once per entry at its timestamp.
ArrivalStream = Tuple[Sequence[float], Sequence[Any], Callable[[Any], None]]

#: One heap entry: ``(time, sequence, handle, payload)``. For plain and
#: posted events the payload is the callback; for timer entries it is the
#: generation the entry was pushed under. Posted (fire-and-forget) events
#: carry ``None`` in the handle slot. The unique sequence number
#: guarantees tuple comparison never reaches the payload slot.
_QueueEntry = Tuple[float, int, Union["EventHandle", "ReusableTimer", None], Any]

#: Default dead-entry fraction that triggers an in-place heap compaction.
DEFAULT_COMPACTION_THRESHOLD = 0.5
#: Heaps smaller than this are never compacted (not worth the sweep).
DEFAULT_COMPACTION_MIN_SIZE = 64


def _no_arrival_stream(payload: Any) -> None:
    """Placeholder arrival callback; unreachable (arrival_count stays 0)."""
    raise SimulationError("arrival fired without an arrival stream")


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; cancellable.

    ``time`` is the event's firing instant in simulated seconds.
    """

    __slots__ = ("time", "_cancelled", "_engine")

    def __init__(self, time: float, engine: Optional["SimulationEngine"] = None):
        self.time = time
        self._cancelled = False
        self._engine = engine

    def cancel(self) -> None:
        """Prevent the event from firing (safe after it fired)."""
        if not self._cancelled:
            self._cancelled = True
            engine = self._engine
            if engine is not None:
                self._engine = None
                engine._note_cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class ReusableTimer:
    """A slotted engine timer designed for heavy cancel/re-arm churn.

    Unlike :meth:`SimulationEngine.schedule` + :meth:`EventHandle.cancel`
    (one dead heap entry per cancel, one allocation per arm), a
    ``ReusableTimer`` owns at most one heap entry for its whole life:

    * :meth:`cancel` marks the timer dormant but leaves the entry in the
      heap — O(1), no allocation;
    * re-arming to the same or a later deadline (the 2CPM pattern: the
      idle timer only ever moves forward) just updates the target — the
      in-heap entry re-pushes itself to the real deadline when it
      surfaces, at most once per elapsed entry;
    * re-arming to an *earlier* deadline abandons the old entry via a
      generation bump and pushes a fresh one, so arbitrary schedules stay
      correct.

    Firing order is identical to an equivalently-scheduled plain event:
    ties at the same timestamp break by insertion sequence, and a migrated
    entry receives its sequence number when it migrates — strictly before
    its deadline — so it orders after anything scheduled at that deadline
    earlier in simulated time, exactly like a freshly-pushed event would.
    """

    __slots__ = ("_engine", "_callback", "_deadline", "_entry_time", "_generation")

    def __init__(self, engine: "SimulationEngine", callback: EventCallback):
        self._engine = engine
        self._callback = callback
        #: Current firing target in simulated seconds; None = dormant.
        self._deadline: Optional[float] = None
        #: Timestamp of this generation's in-heap entry; None = no entry.
        self._entry_time: Optional[float] = None
        self._generation = 0

    @property
    def armed(self) -> bool:
        """True when the timer has a pending deadline."""
        return self._deadline is not None

    @property
    def deadline(self) -> Optional[float]:
        """The firing instant in simulated seconds, or ``None`` if dormant."""
        return self._deadline

    def schedule_at(self, time: float) -> None:
        """Arm (or re-arm) the timer to fire at absolute ``time`` seconds.

        Raises:
            SimulationError: when scheduling into the past.
        """
        engine = self._engine
        if time < engine._now:
            raise SimulationError(
                f"cannot schedule timer at {time} before now={engine._now}"
            )
        entry_time = self._entry_time
        if entry_time is not None and entry_time <= time:
            # In-place re-arm: the existing entry fires no later than the
            # new deadline and will migrate itself forward when popped.
            if self._deadline is None:
                engine._cancelled_pending -= 1  # entry is live again
            self._deadline = time
            return
        if entry_time is not None:
            # Earlier than the in-heap entry: abandon it to a stale
            # generation (cleaned up on pop or compaction).
            self._generation += 1
            if self._deadline is not None:
                engine._cancelled_pending += 1
        self._deadline = time
        self._entry_time = time
        heapq.heappush(
            engine._queue,
            (time, next(engine._sequence), self, self._generation),
        )

    def schedule_after(self, delay: float) -> None:
        """Arm the timer ``delay`` seconds from the engine's current time."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        self.schedule_at(self._engine._now + delay)

    def cancel(self) -> None:
        """Disarm the timer (idempotent; the heap entry is reused later)."""
        if self._deadline is None:
            return
        self._deadline = None
        if self._entry_time is not None:
            self._engine._note_cancel()


class SimulationEngine:
    """Event loop with a monotonic simulated clock.

    ``start_time`` is the clock's initial value in simulated seconds.
    ``compaction_threshold`` is the fraction of dead (cancelled) heap
    entries that triggers an in-place compaction sweep (``None`` disables
    compaction); ``compaction_min_size`` is the smallest heap ever swept.

    Typical use::

        engine = SimulationEngine()
        engine.schedule(10.0, lambda: print("fired at", engine.now))
        engine.run()
    """

    __slots__ = (
        "_now",
        "_queue",
        "_sequence",
        "_events_processed",
        "_running",
        "_cancelled_pending",
        "_compaction_threshold",
        "_compaction_min_size",
        "_compactions",
    )

    def __init__(
        self,
        start_time: float = 0.0,
        compaction_threshold: Optional[float] = DEFAULT_COMPACTION_THRESHOLD,
        compaction_min_size: int = DEFAULT_COMPACTION_MIN_SIZE,
    ):
        if compaction_threshold is not None and not 0.0 < compaction_threshold <= 1.0:
            raise SimulationError(
                f"compaction_threshold must be in (0, 1], got {compaction_threshold}"
            )
        self._now = start_time
        self._queue: List[_QueueEntry] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False
        self._cancelled_pending = 0
        self._compaction_threshold = compaction_threshold
        self._compaction_min_size = compaction_min_size
        self._compactions = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) events still queued.

        A dormant :class:`ReusableTimer` entry counts as dead; an armed
        timer counts as exactly one live event regardless of where its
        heap entry currently sits.
        """
        return len(self._queue) - self._cancelled_pending

    @property
    def queue_depth(self) -> int:
        """Raw heap size, dead entries included (compaction heuristic)."""
        return len(self._queue)

    @property
    def compactions(self) -> int:
        """Heap compaction sweeps performed so far."""
        return self._compactions

    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time`` (seconds).

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        handle = EventHandle(time, self)
        heapq.heappush(self._queue, (time, next(self._sequence), handle, callback))
        return handle

    def schedule_after(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback)

    def post(self, time: float, callback: EventCallback) -> None:
        """Schedule an *uncancellable* event at absolute ``time`` seconds.

        Fire-and-forget: no :class:`EventHandle` is allocated, which makes
        this the cheapest way to preload bulk events (e.g. trace arrivals)
        that nothing will ever cancel.

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        heapq.heappush(self._queue, (time, next(self._sequence), None, callback))

    def timer(self, callback: EventCallback) -> ReusableTimer:
        """A dormant :class:`ReusableTimer` firing ``callback``."""
        return ReusableTimer(self, callback)

    def peek_time(self) -> Optional[float]:
        """Seconds timestamp of the next live event, or ``None`` if
        drained."""
        head = self._fix_head()
        if head is None:
            return None
        return head[0]

    def step(self) -> bool:
        """Process one event. Returns False when the queue is drained."""
        head = self._fix_head()
        if head is None:
            return False
        heapq.heappop(self._queue)
        self._dispatch(head)
        return True

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        arrivals: Optional[ArrivalStream] = None,
    ) -> None:
        """Drain the event queue (and an optional bulk-arrival stream).

        Args:
            until: Stop once the next event would be strictly after this
                time; the clock is advanced to ``until``.
            max_events: Safety valve against runaway feedback loops. The
                budget is checked *before* each event: exactly
                ``max_events`` events run, then the engine raises without
                processing the ``max_events + 1``-th.
            arrivals: A ``(times, payloads, callback)`` stream of
                pre-sorted, uncancellable events merged with the heap.
                Equivalent to :meth:`post`-ing every entry before the run
                — at equal timestamps the stream fires first, exactly as
                preloaded events (with their earlier sequence numbers)
                would — but the entries never touch the heap, so bulk
                trace arrivals stop paying ``O(log n)`` push/pop each and
                stop inflating every other event's heap operations. The
                stream is consumed only up to ``until``; entries after the
                cutoff are dropped, so callers replaying a trace should
                pass a horizon at or after the last arrival.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        self._running = True
        # The loop body inlines step() and the common live-event case of
        # _fix_head()/_dispatch(): the head is normalised once per
        # iteration (peek_time + step would sweep dead entries twice) and
        # popped straight into its callback with no helper calls.
        queue = self._queue
        heappop = heapq.heappop
        arrival_times: Sequence[float] = ()
        arrival_payloads: Sequence[Any] = ()
        arrival_callback: Callable[[Any], None] = _no_arrival_stream
        arrival_index = 0
        arrival_count = 0
        if arrivals is not None:
            arrival_times, arrival_payloads, arrival_callback = arrivals
            arrival_count = len(arrival_times)
            if len(arrival_payloads) != arrival_count:
                raise SimulationError(
                    "arrival stream times and payloads differ in length"
                )
            if arrival_count and arrival_times[0] < self._now:
                raise SimulationError(
                    f"cannot stream event at {arrival_times[0]} before "
                    f"now={self._now}"
                )
        # Per-event bound checks reduce to bare float compares: +inf
        # stands in for "no horizon" / "no budget".
        horizon = inf if until is None else until
        event_budget = inf if max_events is None else max_events
        try:
            processed = 0
            while True:
                while arrival_index < arrival_count:
                    # A dead heap head only *underestimates* the next
                    # live event time, so firing the arrival when it is
                    # <= that bound is always order-correct — and skips
                    # normalising the head on the overwhelmingly common
                    # trace-replay iteration.
                    time = arrival_times[arrival_index]
                    if queue and time > queue[0][0]:
                        break  # a heap event (or dead bound) comes first
                    if time > horizon:
                        arrival_index = arrival_count  # past the horizon
                        break
                    if processed >= event_budget:
                        raise SimulationError(
                            f"exceeded max_events={max_events}; "
                            "runaway event loop?"
                        )
                    payload = arrival_payloads[arrival_index]
                    arrival_index += 1
                    self._now = time
                    self._events_processed += 1
                    try:
                        arrival_callback(payload)
                    except SimulationError:
                        raise
                    except Exception as exc:
                        raise SimulationError(
                            f"event callback {arrival_callback!r} failed "
                            f"at t={time:.6g}s "
                            f"(event #{self._events_processed}): {exc}"
                        ) from exc
                    processed += 1
                if not queue:
                    break
                head = queue[0]
                handle = head[2]
                if (
                    handle is not None
                    and (type(handle) is not EventHandle or handle._cancelled)
                    and not (
                        # Live ReusableTimer firing at its in-heap entry
                        # time (the overwhelmingly common timer case) —
                        # dispatch straight from the fast path below.
                        type(handle) is ReusableTimer
                        # Identity check against the heap-stored copy of
                        # the same float, not a tolerance comparison.
                        and handle._deadline == head[0]  # reprolint: disable=RPL001
                        and head[3] == handle._generation
                    )
                ):
                    head = self._fix_head()  # slow path: dead entry / timer
                    if arrival_index < arrival_count and (
                        head is None
                        or arrival_times[arrival_index] <= head[0]
                    ):
                        # The dead bound that deferred the arrival was an
                        # *under*estimate; against the exact live head
                        # time (or drained queue) the arrival fires
                        # first after all. Re-run the merge.
                        continue
                    if head is None:
                        break
                    handle = head[2]
                time = head[0]
                if time > horizon:
                    break
                if processed >= event_budget:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                heappop(queue)
                if type(handle) is ReusableTimer:
                    handle._deadline = None
                    handle._entry_time = None
                    callback = handle._callback
                else:
                    if handle is not None:
                        handle._engine = None  # a late cancel() is a no-op
                    callback = head[3]
                self._now = time
                self._events_processed += 1
                try:
                    callback()
                except SimulationError:
                    raise  # already carries simulation context
                except Exception as exc:
                    raise SimulationError(
                        f"event callback {callback!r} failed at t={time:.6g}s "
                        f"(event #{self._events_processed}): {exc}"
                    ) from exc
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    # -- internals ------------------------------------------------------

    def _dispatch(self, head: _QueueEntry) -> None:
        """Fire one already-popped live entry."""
        time = head[0]
        handle = head[2]
        if type(handle) is ReusableTimer:
            handle._deadline = None
            handle._entry_time = None
            callback = handle._callback
        else:
            if handle is not None:
                handle._engine = None  # a late cancel() is now a no-op
            callback = head[3]
        self._now = time
        self._events_processed += 1
        try:
            callback()
        except SimulationError:
            raise  # already carries simulation context; do not double-wrap
        except Exception as exc:
            raise SimulationError(
                f"event callback {callback!r} failed at t={time:.6g}s "
                f"(event #{self._events_processed}): {exc}"
            ) from exc

    def _fix_head(self) -> Optional[_QueueEntry]:
        """Normalise the heap head: drop dead entries, migrate stale
        timer entries to their current deadline, and return the live head
        (or ``None`` when drained)."""
        queue = self._queue
        heappop = heapq.heappop
        heappush = heapq.heappush
        while queue:
            head = queue[0]
            handle = head[2]
            if handle is None:  # posted events are always live
                return head
            if type(handle) is ReusableTimer:
                if head[3] != handle._generation:
                    heappop(queue)
                    self._cancelled_pending -= 1
                    continue
                deadline = handle._deadline
                if deadline is None:
                    heappop(queue)
                    self._cancelled_pending -= 1
                    handle._entry_time = None
                    continue
                if deadline > head[0]:
                    # Re-armed later while in flight: migrate the entry.
                    heappop(queue)
                    heappush(
                        queue,
                        (deadline, next(self._sequence), handle, head[3]),
                    )
                    handle._entry_time = deadline
                    continue
            elif handle._cancelled:
                heappop(queue)
                self._cancelled_pending -= 1
                continue
            return head
        return None

    def _note_cancel(self) -> None:
        """Account one newly-dead heap entry; compact when they pile up."""
        self._cancelled_pending += 1
        threshold = self._compaction_threshold
        if (
            threshold is not None
            and len(self._queue) >= self._compaction_min_size
            and self._cancelled_pending >= threshold * len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every dead entry and re-heapify, in place.

        Removal cannot reorder live events: pop order is the total order
        ``(time, sequence)``, which is independent of heap layout. The
        sweep mutates ``self._queue`` in place because ``run()`` holds a
        local alias to the list.
        """
        live: List[_QueueEntry] = []
        for entry in self._queue:
            handle = entry[2]
            if type(handle) is ReusableTimer:
                if entry[3] == handle._generation and handle._deadline is not None:
                    live.append(entry)
                elif entry[3] == handle._generation:
                    handle._entry_time = None
            elif handle is None or not handle._cancelled:
                live.append(entry)
        self._queue[:] = live
        heapq.heapify(self._queue)
        self._cancelled_pending = 0
        self._compactions += 1
