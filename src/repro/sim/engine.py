"""Deterministic discrete-event simulation engine (OMNeT++ substitute).

The engine is a binary-heap event queue with a monotonic clock. Events are
plain callables; insertion order breaks timestamp ties so runs are fully
deterministic. Timers can be cancelled (lazily — cancelled entries are
skipped on pop), which the 2CPM idleness timer relies on.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple

from repro.errors import SimulationError

EventCallback = Callable[[], None]


class EventHandle:
    """Handle returned by :meth:`SimulationEngine.schedule`; cancellable.

    ``time`` is the event's firing instant in simulated seconds.
    """

    __slots__ = ("time", "_cancelled")

    def __init__(self, time: float):
        self.time = time
        self._cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing (safe after it fired)."""
        self._cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._cancelled


class SimulationEngine:
    """Event loop with a monotonic simulated clock.

    ``start_time`` is the clock's initial value in simulated seconds.

    Typical use::

        engine = SimulationEngine()
        engine.schedule(10.0, lambda: print("fired at", engine.now))
        engine.run()
    """

    def __init__(self, start_time: float = 0.0):
        self._now = start_time
        self._queue: List[Tuple[float, int, EventHandle, EventCallback]] = []
        self._sequence = itertools.count()
        self._events_processed = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def events_processed(self) -> int:
        return self._events_processed

    @property
    def pending_events(self) -> int:
        """Events still queued (including cancelled-but-unpopped ones)."""
        return len(self._queue)

    def schedule(self, time: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` at absolute simulated ``time`` (seconds).

        Raises:
            SimulationError: when scheduling into the past.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event at {time} before now={self._now}"
            )
        handle = EventHandle(time)
        heapq.heappush(self._queue, (time, next(self._sequence), handle, callback))
        return handle

    def schedule_after(self, delay: float, callback: EventCallback) -> EventHandle:
        """Schedule ``callback`` after a relative ``delay`` seconds."""
        if delay < 0:
            raise SimulationError(f"delay must be >= 0, got {delay}")
        return self.schedule(self._now + delay, callback)

    def peek_time(self) -> Optional[float]:
        """Seconds timestamp of the next live event, or ``None`` if
        drained."""
        self._drop_cancelled_head()
        if not self._queue:
            return None
        return self._queue[0][0]

    def step(self) -> bool:
        """Process one event. Returns False when the queue is drained."""
        self._drop_cancelled_head()
        if not self._queue:
            return False
        time, _seq, handle, callback = heapq.heappop(self._queue)
        self._now = time
        self._events_processed += 1
        try:
            callback()
        except SimulationError:
            raise  # already carries simulation context; do not double-wrap
        except Exception as exc:
            raise SimulationError(
                f"event callback {callback!r} failed at t={time:.6g}s "
                f"(event #{self._events_processed}): {exc}"
            ) from exc
        return True

    def run(
        self, until: Optional[float] = None, max_events: Optional[int] = None
    ) -> None:
        """Drain the event queue.

        Args:
            until: Stop once the next event would be strictly after this
                time; the clock is advanced to ``until``.
            max_events: Safety valve against runaway feedback loops.
        """
        if self._running:
            raise SimulationError("engine.run() is not re-entrant")
        self._running = True
        try:
            processed = 0
            while True:
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    break
                if max_events is not None and processed >= max_events:
                    raise SimulationError(
                        f"exceeded max_events={max_events}; runaway event loop?"
                    )
                self.step()
                processed += 1
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False

    def _drop_cancelled_head(self) -> None:
        while self._queue and self._queue[0][2].cancelled:
            heapq.heappop(self._queue)
