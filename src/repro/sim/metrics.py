"""Backwards-compatible alias: metrics live in :mod:`repro.report`.

Kept so ``repro.sim.metrics`` imports keep working; the classes moved to a
top-level module to keep :mod:`repro.core` free of any dependency on the
:mod:`repro.sim` package (no import cycles).
"""

from repro.report import MetricsCollector, SimulationReport, percentile

__all__ = ["MetricsCollector", "SimulationReport", "percentile"]
