"""Shared metrics primitives: counters, gauges, histograms, registry.

Two layers live here:

* The *trace-replay* metrics — :class:`~repro.report.MetricsCollector`,
  :class:`~repro.report.SimulationReport` and
  :func:`~repro.report.percentile` — are re-exported from
  :mod:`repro.report` (they moved there to keep :mod:`repro.core` free of
  any dependency on :mod:`repro.sim`).
* The *live-service* metrics primitives defined below —
  :class:`Counter`, :class:`Gauge`, :class:`Histogram` and
  :class:`MetricsRegistry` — are shared by the discrete-event engine
  (via :func:`observe_engine`) and the serving layer
  (:mod:`repro.serve`), so there is exactly one implementation of
  "count / point-in-time value / latency distribution" in the repo.

Everything is deterministic: a registry snapshot is a plain sorted dict
of exact values (no wall-clock reads, no rounding), so two identical
runs under the virtual clock serialise byte-identically.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Dict,
    Iterable,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError
from repro.report import MetricsCollector, SimulationReport, percentile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (engine imports nothing from here)
    from repro.sim.engine import SimulationEngine

Number = Union[int, float]

#: Histogram quantiles reported by :meth:`Histogram.snapshot`, as
#: ``(label, fraction)`` pairs — the p50/p95/p99 the serving layer plots.
QUANTILES: Tuple[Tuple[str, float], ...] = (
    ("p50", 0.50),
    ("p90", 0.90),
    ("p95", 0.95),
    ("p99", 0.99),
)


class Counter:
    """A monotonically non-decreasing event count."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (>= 0) events."""
        if amount < 0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (amount={amount})"
            )
        self._value += amount

    @property
    def value(self) -> int:
        return self._value


class Gauge:
    """A point-in-time value (queue depth, joules so far, ...)."""

    __slots__ = ("name", "_value")

    def __init__(self, name: str):
        self.name = name
        self._value: Number = 0

    def set(self, value: Number) -> None:
        """Overwrite the gauge with the latest observed value."""
        self._value = value

    @property
    def value(self) -> Number:
        return self._value


class Histogram:
    """An exact value distribution (response times, batch sizes).

    Samples are kept verbatim — the evaluation sizes (tens of thousands
    of requests) make exact quantiles affordable, and exactness is what
    keeps snapshots byte-reproducible across identical runs.
    """

    __slots__ = ("name", "_samples", "_total", "_sorted")

    def __init__(self, name: str):
        self.name = name
        self._samples: List[float] = []
        self._total = 0.0
        self._sorted = True

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._samples and value < self._samples[-1]:
            self._sorted = False
        self._samples.append(value)
        self._total += value

    def observe_many(self, values: Iterable[float]) -> None:
        """Record a batch of samples (the router's merge-time folds)."""
        for value in values:
            self.observe(value)

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def total(self) -> float:
        """Sum of all samples (same unit as the samples)."""
        return self._total

    @property
    def mean(self) -> float:
        """Mean sample (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return self._total / len(self._samples)

    def percentile(self, fraction: float) -> float:
        """Nearest-rank percentile (0.0 when empty)."""
        if not self._samples:
            return 0.0
        return percentile(self._ascending(), fraction)

    def _ascending(self) -> List[float]:
        if not self._sorted:
            self._samples.sort()
            self._sorted = True
        return self._samples

    @property
    def samples(self) -> Tuple[float, ...]:
        """All recorded samples, ascending — the full-fidelity export.

        Ascending (not insertion) order so the export is a deterministic
        function of the recorded multiset; cross-shard merges replay
        these in a fixed shard order, which keeps merged totals and
        quantiles byte-reproducible.
        """
        return tuple(self._ascending())

    def snapshot(self) -> Dict[str, Number]:
        """Count, total, mean, min/max and the standard quantiles."""
        out: Dict[str, Number] = {
            "count": self.count,
            "total": self._total,
            "mean": self.mean,
        }
        if self._samples:
            ascending = self._ascending()
            out["min"] = ascending[0]
            out["max"] = ascending[-1]
            for label, fraction in QUANTILES:
                out[label] = percentile(ascending, fraction)
        else:
            out["min"] = 0.0
            out["max"] = 0.0
            for label, _fraction in QUANTILES:
                out[label] = 0.0
        return out


class MetricsRegistry:
    """Named counters/gauges/histograms with a deterministic snapshot.

    Names are namespaced by convention (``requests.completed``,
    ``engine.events_processed``); registering one name under two
    different metric kinds is an error.
    """

    def __init__(self) -> None:
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_unique(self, name: str, kind: str) -> None:
        for other_kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("histogram", self._histograms),
        ):
            if other_kind != kind and name in table:
                raise ConfigurationError(
                    f"metric {name!r} already registered as a {other_kind}"
                )

    def counter(self, name: str) -> Counter:
        """Get-or-create the counter called ``name``."""
        existing = self._counters.get(name)
        if existing is None:
            self._check_unique(name, "counter")
            existing = self._counters[name] = Counter(name)
        return existing

    def gauge(self, name: str) -> Gauge:
        """Get-or-create the gauge called ``name``."""
        existing = self._gauges.get(name)
        if existing is None:
            self._check_unique(name, "gauge")
            existing = self._gauges[name] = Gauge(name)
        return existing

    def histogram(self, name: str) -> Histogram:
        """Get-or-create the histogram called ``name``."""
        existing = self._histograms.get(name)
        if existing is None:
            self._check_unique(name, "histogram")
            existing = self._histograms[name] = Histogram(name)
        return existing

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """All metrics as a JSON-ready dict, names sorted.

        The shape is stable: ``{"counters": {...}, "gauges": {...},
        "histograms": {name: {count, total, mean, min, max, p50, ...}}}``.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: dict(self._histograms[name].snapshot())
                for name in sorted(self._histograms)
            },
        }

    def dump(self) -> Dict[str, Dict[str, object]]:
        """Full-fidelity export: like :meth:`snapshot`, but histograms
        carry their raw sample lists instead of condensed quantiles.

        This is the cross-process wire format of the sharded serving
        layer: a shard worker dumps its registry, the router merges the
        dumps with :func:`merge_dumps`, and the merged registry
        re-derives exact quantiles from the union of samples — something
        condensed snapshots cannot do.
        """
        return {
            "counters": {
                name: self._counters[name].value
                for name in sorted(self._counters)
            },
            "gauges": {
                name: self._gauges[name].value for name in sorted(self._gauges)
            },
            "histograms": {
                name: list(self._histograms[name].samples)
                for name in sorted(self._histograms)
            },
        }


#: Gauges merged by ``max`` instead of sum: point-in-time clocks, where
#: "the deployment's time" is the furthest shard, not the total.
GAUGE_MERGE_MAX: Tuple[str, ...] = ("time.now_s",)


def merge_dumps(
    dumps: Sequence[Mapping[str, Mapping[str, object]]],
    registry: Optional[MetricsRegistry] = None,
) -> MetricsRegistry:
    """Fold full-fidelity :meth:`MetricsRegistry.dump` exports into one.

    The cross-shard aggregation rule set:

    * **counters** sum — events happened on some shard, the deployment
      saw all of them;
    * **gauges** sum, except :data:`GAUGE_MERGE_MAX` names which take
      the max (clock-like values);
    * **histograms** re-observe every raw sample, dump order then
      ascending within a dump — so merged totals and quantiles are
      exact and byte-reproducible for a fixed dump order (pass dumps in
      shard-id order).

    Args:
        dumps: Registry dumps, already in the desired deterministic
            order.
        registry: Merge target (created fresh when ``None``).

    Returns:
        The merged registry; ``snapshot()`` on it condenses the merged
        histograms back to quantiles.
    """
    merged = registry if registry is not None else MetricsRegistry()
    max_seen: Dict[str, Number] = {}
    for dump in dumps:
        counters = dump.get("counters", {})
        for name in sorted(counters):
            value = counters[name]
            if not isinstance(value, int):
                raise ConfigurationError(
                    f"counter {name!r} dump value must be an int, "
                    f"got {type(value).__name__}"
                )
            merged.counter(name).inc(value)
        gauges = dump.get("gauges", {})
        for name in sorted(gauges):
            gauge_value = gauges[name]
            if not isinstance(gauge_value, (int, float)):
                raise ConfigurationError(
                    f"gauge {name!r} dump value must be a number, "
                    f"got {type(gauge_value).__name__}"
                )
            gauge = merged.gauge(name)
            if name in GAUGE_MERGE_MAX:
                best = max_seen.get(name)
                if best is None or gauge_value > best:
                    max_seen[name] = gauge_value
                    gauge.set(gauge_value)
            else:
                gauge.set(gauge.value + gauge_value)
        histograms = dump.get("histograms", {})
        for name in sorted(histograms):
            samples = histograms[name]
            if not isinstance(samples, (list, tuple)):
                raise ConfigurationError(
                    f"histogram {name!r} dump value must be a sample "
                    f"list, got {type(samples).__name__}"
                )
            histogram = merged.histogram(name)
            for sample in samples:
                histogram.observe(float(sample))
    return merged


def observe_engine(registry: MetricsRegistry, engine: "SimulationEngine") -> None:
    """Mirror the engine's own counters into ``registry`` gauges.

    Gauges (not counters) because the engine already owns the running
    totals; the registry records their point-in-time values at snapshot.
    """
    registry.gauge("engine.events_processed").set(engine.events_processed)
    registry.gauge("engine.pending_events").set(engine.pending_events)
    registry.gauge("engine.queue_depth").set(engine.queue_depth)
    registry.gauge("engine.compactions").set(engine.compactions)


__all__ = [
    "Counter",
    "GAUGE_MERGE_MAX",
    "Gauge",
    "Histogram",
    "MetricsCollector",
    "MetricsRegistry",
    "Number",
    "QUANTILES",
    "SimulationReport",
    "merge_dumps",
    "observe_engine",
    "percentile",
]
