"""High-level entry points: run one scheduler over one workload.

* :func:`simulate` — event-driven run for online/batch schedulers.
* :func:`run_offline` — MWIS-style offline scheduling + analytic
  evaluation under the offline model (no spin-up delays).
* :func:`always_on_baseline` — the paper's normalisation run: disks start
  spinning and never spin down.

All three share the same derived horizon for a given workload, so their
energies are directly comparable (the paper's "normalized to the
always-on config" axis).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from typing import TYPE_CHECKING

from repro.core.problem import SchedulingProblem
from repro.core.scheduler import (
    BatchScheduler,
    OfflineScheduler,
    OnlineScheduler,
    Scheduler,
)
from repro.core.static_scheduler import StaticScheduler
from repro.errors import SchedulingError
from repro.placement.catalog import PlacementCatalog
from repro.power.policy import AlwaysOnPolicy
from repro.power.states import DiskPowerState
from repro.sim.config import SimulationConfig
from repro.report import SimulationReport
from repro.sim.storage import StorageSystem
from repro.types import Request

if TYPE_CHECKING:
    from repro.core.offline import OfflineEvaluation


def simulate(
    requests: Sequence[Request],
    catalog: PlacementCatalog,
    scheduler: Scheduler,
    config: SimulationConfig,
) -> SimulationReport:
    """Run an online or batch scheduler through the event simulator."""
    if isinstance(scheduler, OfflineScheduler):
        return run_offline(requests, catalog, scheduler, config).report
    if config.tier is not None:
        # Imported lazily: the tiered system embeds StorageSystem, so
        # repro.tape.tier imports this package back.
        from repro.tape.tier import TieredStorageSystem

        return TieredStorageSystem(catalog, scheduler, config).run(requests)
    system = StorageSystem(catalog, scheduler, config)
    return system.run(requests)


def run_offline(
    requests: Sequence[Request],
    catalog: PlacementCatalog,
    scheduler: OfflineScheduler,
    config: SimulationConfig,
) -> "OfflineEvaluation":
    """Schedule with a-priori knowledge and evaluate analytically."""
    # Imported lazily: repro.core.offline itself (transitively) imports this
    # module during package initialisation.
    from repro.core.offline import OfflineEvaluator

    if not isinstance(scheduler, OfflineScheduler):
        raise SchedulingError("run_offline requires an OfflineScheduler")
    problem = SchedulingProblem.build(
        requests=requests,
        catalog=catalog,
        profile=config.profile,
        num_disks=config.num_disks,
    )
    assignment = scheduler.schedule(problem)
    return OfflineEvaluator(problem).evaluate(assignment, scheduler.name)


def always_on_baseline(
    requests: Sequence[Request],
    catalog: PlacementCatalog,
    config: SimulationConfig,
    scheduler: Optional[Scheduler] = None,
) -> SimulationReport:
    """The always-on power configuration over the same workload.

    Disks start IDLE and never spin down; scheduling barely affects the
    result (energy is dominated by ``num_disks * horizon * P_I``), and the
    default Static scheduler keeps it deterministic.
    """
    baseline_config = replace(
        config,
        policy=AlwaysOnPolicy(),
        initial_state=DiskPowerState.IDLE,
    )
    if scheduler is None:
        scheduler = StaticScheduler()
    if isinstance(scheduler, OfflineScheduler):
        raise SchedulingError("always-on baseline needs an online/batch scheduler")
    system = StorageSystem(catalog, scheduler, baseline_config)
    report = system.run(requests)
    return SimulationReport(
        scheduler_name="always-on",
        duration=report.duration,
        total_energy=report.total_energy,
        disk_stats=report.disk_stats,
        response_times=report.response_times,
        requests_offered=report.requests_offered,
        requests_completed=report.requests_completed,
        events_processed=report.events_processed,
    )
