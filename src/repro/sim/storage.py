"""The storage system: scheduler + disks + placement wired to the engine.

:class:`StorageSystem` is the moral equivalent of the paper's OMNeT++
model (Fig. 1): requests arrive at a scheduler which dispatches them to
disks according to the data placement; a power manager (the policy inside
each :class:`~repro.disk.drive.SimulatedDisk`) spins idle disks down.

It also *is* the :class:`~repro.core.scheduler.SystemView` the schedulers
observe — ``now``, per-disk state/queue/Tlast, and placement lookups.
"""

from __future__ import annotations

import math
import random
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.scheduler import BatchScheduler, OnlineScheduler, Scheduler
from repro.disk.drive import SimulatedDisk
from repro.errors import SchedulingError, SimulationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import DiskPowerProfile
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.report import MetricsCollector, SimulationReport
from repro.types import DataId, DiskId, OpKind, Request


class StorageSystem:
    """One simulated storage system instance (single-use: one run)."""

    def __init__(
        self,
        catalog: PlacementCatalog,
        scheduler: Scheduler,
        config: SimulationConfig,
    ):
        if not isinstance(scheduler, (OnlineScheduler, BatchScheduler)):
            raise SchedulingError(
                "StorageSystem drives online/batch schedulers; use "
                "run_offline() for offline schedulers"
            )
        self._catalog = catalog
        self._scheduler = scheduler
        self._config = config
        self._engine = SimulationEngine()
        self._metrics = MetricsCollector()
        self._disks: Dict[DiskId, SimulatedDisk] = {
            disk_id: SimulatedDisk(
                disk_id=disk_id,
                engine=self._engine,
                profile=config.profile,
                policy=config.policy,
                service_model=config.make_service_model(),
                rng=random.Random(config.seed * 1_000_003 + disk_id),
                on_complete=self._metrics.on_complete,
                initial_state=config.initial_state,
                record_transitions=config.record_transitions,
            )
            for disk_id in range(config.num_disks)
        }
        self._batch_buffer: List[Request] = []
        self._tick_scheduled = False
        self._offered = 0
        self._ran = False
        self.cache = config.cache_factory() if config.cache_factory else None

    # -- SystemView protocol -------------------------------------------

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def profile(self) -> DiskPowerProfile:
        return self._config.profile

    @property
    def disk_ids(self) -> range:
        return range(self._config.num_disks)

    def disk(self, disk_id: DiskId) -> SimulatedDisk:
        """Live view of one disk (SystemView protocol)."""
        return self._disks[disk_id]

    def locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """Placement lookup (SystemView protocol)."""
        return self._catalog.locations(data_id)

    # -- driving the run -------------------------------------------------

    def run(self, requests: Sequence[Request]) -> SimulationReport:
        """Replay ``requests`` and return the final report."""
        if self._ran:
            raise SimulationError("StorageSystem instances are single-use")
        self._ran = True
        ordered = sorted(requests)
        self._offered = len(ordered)
        for request in ordered:
            self._engine.schedule(request.time, _Arrival(self, request))
        last_arrival = ordered[-1].time if ordered else 0.0
        horizon = self._config.derived_horizon(last_arrival)
        self._engine.run(until=horizon)
        for disk in self._disks.values():
            disk.finalize()
        return SimulationReport(
            scheduler_name=self._scheduler.name,
            duration=self._engine.now,
            total_energy=sum(d.stats.energy for d in self._disks.values()),
            disk_stats={d_id: d.stats for d_id, d in self._disks.items()},
            response_times=self._metrics.response_times,
            requests_offered=self._offered,
            requests_completed=self._metrics.completed,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            events_processed=self._engine.events_processed,
        )

    # -- internal event handlers ------------------------------------------

    def _on_arrival(self, request: Request) -> None:
        if (
            self.cache is not None
            and request.op is OpKind.READ
            and self.cache.lookup(request.data_id)
        ):
            self._complete_from_cache(request)
            return
        if isinstance(self._scheduler, OnlineScheduler):
            disk_id = self._scheduler.choose(request, self)
            self._dispatch(request, disk_id)
        else:
            self._batch_buffer.append(request)
            self._ensure_tick()

    def _ensure_tick(self) -> None:
        if self._tick_scheduled:
            return
        assert isinstance(self._scheduler, BatchScheduler)
        interval = self._scheduler.interval
        next_tick = math.ceil(self._engine.now / interval) * interval
        if next_tick <= self._engine.now:
            next_tick += interval
        self._engine.schedule(next_tick, self._on_tick)
        self._tick_scheduled = True

    def _on_tick(self) -> None:
        self._tick_scheduled = False
        if not self._batch_buffer:
            return
        assert isinstance(self._scheduler, BatchScheduler)
        batch, self._batch_buffer = self._batch_buffer, []
        decisions = self._scheduler.choose_batch(batch, self)
        for request in batch:
            try:
                disk_id = decisions[request.request_id]
            except KeyError:
                raise SchedulingError(
                    f"batch scheduler left request {request.request_id} undecided"
                )
            self._dispatch(request, disk_id)

    def _dispatch(self, request: Request, disk_id: DiskId) -> None:
        if disk_id not in self._disks:
            raise SchedulingError(f"scheduler chose unknown disk {disk_id}")
        # Reads must land on a replica; off-loaded writes may go anywhere
        # (the write off-loading liberty, Section 2.1).
        if request.op is OpKind.READ and disk_id not in self._catalog.locations(
            request.data_id
        ):
            raise SchedulingError(
                f"scheduler sent request {request.request_id} to disk {disk_id}, "
                f"which does not hold data {request.data_id}"
            )
        self._disks[disk_id].submit(request)
        if self.cache is not None and request.op is OpKind.READ:
            self.cache.insert(
                request.data_id, disk_id, lambda d: self._disks[d].state
            )

    def _complete_from_cache(self, request: Request) -> None:
        """Serve a read from the cache: no disk is touched."""
        home = self.cache.home_disk(request.data_id)

        def deliver() -> None:
            self._metrics.on_complete(request, home, self._engine.now)

        delay = self._config.cache_hit_time
        if delay > 0:
            self._engine.schedule_after(delay, deliver)
        else:
            deliver()


class _Arrival:
    """Arrival-event callback carrying its request (picklable/debuggable)."""

    __slots__ = ("_system", "_request")

    def __init__(self, system: StorageSystem, request: Request):
        self._system = system
        self._request = request

    def __call__(self) -> None:
        self._system._on_arrival(self._request)
