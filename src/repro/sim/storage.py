"""The storage system: scheduler + disks + placement wired to the engine.

:class:`StorageSystem` is the moral equivalent of the paper's OMNeT++
model (Fig. 1): requests arrive at a scheduler which dispatches them to
disks according to the data placement; a power manager (the policy inside
each :class:`~repro.disk.drive.SimulatedDisk`) spins idle disks down.

It also *is* the :class:`~repro.core.scheduler.SystemView` the schedulers
observe — ``now``, per-disk state/queue/Tlast, and placement lookups.
"""

from __future__ import annotations

import gc
import math
import operator
import random
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.fleet import SMALL_CANDIDATE_CUTOFF, FleetCostState
from repro.core.heuristic import HeuristicScheduler
from repro.core.scheduler import BatchScheduler, OnlineScheduler, Scheduler
from repro.disk.drive import SimulatedDisk
from repro.errors import (
    PlacementError,
    ReplicaUnavailableError,
    SchedulingError,
    SimulationError,
)
from repro.faults.health import DiskHealth
from repro.faults.injector import FaultInjector
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import DiskPowerProfile
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.report import MetricsCollector, SimulationReport
from repro.types import DataId, DiskId, OpKind, Request, RequestId

#: Request's dataclass compare-fields, as a sort key (see run()).
_REQUEST_ORDER = operator.attrgetter("time", "request_id")

#: First failover-retry delay in seconds; doubles on every further attempt.
RETRY_BASE_S = 0.5
#: Backoff retries granted to a request whose replicas are all transiently
#: down before it is declared lost.
MAX_FAILOVER_ATTEMPTS = 8


class StorageSystem:
    """One simulated storage system instance (single-use: one run)."""

    def __init__(
        self,
        catalog: PlacementCatalog,
        scheduler: Scheduler,
        config: SimulationConfig,
        engine: Optional[SimulationEngine] = None,
    ):
        """Wire scheduler + disks to an engine.

        ``engine`` lets an embedding system (the tiered disk/tape
        system) share one virtual clock with the disk fleet; when
        ``None`` — every direct use — a private engine is created and
        :meth:`run` drives it. An embedder passing its own engine must
        drive that engine itself instead of calling :meth:`run`.
        """
        if not isinstance(scheduler, (OnlineScheduler, BatchScheduler)):
            raise SchedulingError(
                "StorageSystem drives online/batch schedulers; use "
                "run_offline() for offline schedulers"
            )
        self._catalog = catalog
        # data_id -> locations tuple, resolved once: per-request placement
        # lookups are one dict access instead of a catalog method call.
        self._locations_by_data = catalog.mapping()
        self._scheduler = scheduler
        # Narrowed alias: _admit runs per arrival and should not pay an
        # ABC isinstance check each time.
        self._online_scheduler: Optional[OnlineScheduler] = (
            scheduler if isinstance(scheduler, OnlineScheduler) else None
        )
        self._config = config
        self._engine = engine if engine is not None else SimulationEngine()
        self._metrics = MetricsCollector()
        self._disks: Dict[DiskId, SimulatedDisk] = {
            disk_id: SimulatedDisk(
                disk_id=disk_id,
                engine=self._engine,
                profile=config.profile,
                policy=config.policy,
                service_model=config.make_service_model(),
                rng=random.Random(config.seed * 1_000_003 + disk_id),
                on_complete=self._metrics.on_complete,
                initial_state=config.initial_state,
                record_transitions=config.record_transitions,
            )
            for disk_id in range(config.num_disks)
        }
        #: Columnar cost kernel (``view.fleet``): schedulers score
        #: through it when attached; ``None`` selects the pure-Python
        #: reference path. Both kernels are byte-identical by contract.
        self.fleet: Optional[FleetCostState] = None
        if config.kernel == "numpy":
            self.fleet = FleetCostState(
                config.num_disks, config.profile, config.initial_state
            )
            for disk in self._disks.values():
                disk.attach_fleet(self.fleet)
        self._batch_buffer: List[Request] = []
        self._tick_scheduled = False
        self._offered = 0
        self._ran = False
        self.cache = config.cache_factory() if config.cache_factory else None
        self._redispatched = 0
        self._failover_retries = 0
        self._retry_attempts: Dict[RequestId, int] = {}
        self._faults: Optional[FaultInjector] = None
        if config.fault_plan is not None and config.fault_plan.active:
            self._faults = FaultInjector(
                plan=config.fault_plan,
                engine=self._engine,
                disks=self._disks,
                on_disk_failed=self._on_disk_failed,
            )

    # -- embedder interface (tiered system) ------------------------------

    @property
    def engine(self) -> SimulationEngine:
        """The engine this system is wired to."""
        return self._engine

    @property
    def metrics(self) -> MetricsCollector:
        """The completion collector (shared with an embedder's drives)."""
        return self._metrics

    def arrival_handler(self) -> Callable[[Request], None]:
        """Per-request admission entry point for an embedding system.

        Routes exactly like :meth:`run`'s own arrival stream (including
        the fused fast paths), so an embedder feeding a subset of the
        trace through this handler gets byte-identical disk behaviour.
        """
        return self._arrival_callback()

    def finalize_disks(self) -> None:
        """Close every disk's stats ledger at the engine's current time."""
        for disk in self._disks.values():
            disk.finalize()

    # -- SystemView protocol -------------------------------------------

    @property
    def now(self) -> float:
        return self._engine.now

    @property
    def profile(self) -> DiskPowerProfile:
        return self._config.profile

    @property
    def disk_ids(self) -> range:
        return range(self._config.num_disks)

    def disk(self, disk_id: DiskId) -> SimulatedDisk:
        """Live view of one disk (SystemView protocol)."""
        return self._disks[disk_id]

    def locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """Placement lookup (SystemView protocol)."""
        try:
            return self._locations_by_data[data_id]
        except KeyError:
            raise PlacementError(f"unknown data id {data_id}")

    def available_locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """Replicas currently able to service requests (SystemView).

        Identical to :meth:`locations` on no-fault runs — the precomputed
        placement tuple is returned as-is, nothing is rebuilt. With fault
        injection active, down and failed disks are filtered out.
        """
        if self._faults is None:
            try:
                return self._locations_by_data[data_id]
            except KeyError:
                raise PlacementError(f"unknown data id {data_id}")
        locations = self.locations(data_id)
        disks = self._disks
        return tuple(  # reprolint: disable=RPL007 -- fault path only
            disk_id for disk_id in locations if disks[disk_id].is_available
        )

    # -- driving the run -------------------------------------------------

    def run(self, requests: Sequence[Request]) -> SimulationReport:
        """Replay ``requests`` and return the final report."""
        if self._ran:
            raise SimulationError("StorageSystem instances are single-use")
        self._ran = True
        # Same order as sorted(requests): Request's dataclass ordering
        # compares exactly its (time, request_id) compare-fields, and
        # sorted() is stable either way — the key form just skips one
        # tuple-building __lt__ call per comparison.
        ordered = sorted(requests, key=_REQUEST_ORDER)
        self._offered = len(ordered)
        last_arrival = ordered[-1].time if ordered else 0.0
        horizon = self._config.derived_horizon(last_arrival)
        if self._faults is not None:
            self._faults.install(horizon)
        # Arrivals stream straight through the engine's merge loop: they
        # never touch the heap, so the trace stops paying O(log n) per
        # event and every runtime event's heap ops shrink. Ordering is
        # identical to post()-ing each one up front (preloaded events
        # carry the earliest sequence numbers, so at equal timestamps
        # they fired before any runtime event — the stream-first merge
        # rule reproduces exactly that).
        # The event loop allocates only short-lived, acyclic objects, so
        # the cyclic collector can only cost time here; pause it for the
        # drain (restored even on error — callers keep their setting).
        gc_was_enabled = gc.isenabled()
        if gc_was_enabled:
            gc.disable()
        try:
            self._engine.run(
                until=horizon,
                arrivals=(
                    [request.time for request in ordered],
                    ordered,
                    self._arrival_callback(),
                ),
            )
        finally:
            if gc_was_enabled:
                gc.enable()
        for disk in self._disks.values():
            disk.finalize()
        availability = None
        if self._faults is not None:
            self._faults.close(self._engine.now)
            availability = self._faults.availability_report(
                duration_s=self._engine.now,
                requests_lost=self._metrics.lost,
                requests_redispatched=self._redispatched,
                failover_retries=self._failover_retries,
            )
        return SimulationReport(
            scheduler_name=self._scheduler.name,
            duration=self._engine.now,
            total_energy=sum(d.stats.energy for d in self._disks.values()),
            disk_stats={d_id: d.stats for d_id, d in self._disks.items()},
            response_times=self._metrics.response_times,
            requests_offered=self._offered,
            requests_completed=self._metrics.completed,
            cache_hits=self.cache.hits if self.cache else 0,
            cache_misses=self.cache.misses if self.cache else 0,
            events_processed=self._engine.events_processed,
            availability=availability,
        )

    # -- internal event handlers ------------------------------------------

    def _arrival_callback(self) -> Callable[[Request], None]:
        """The per-arrival handler for this run's configuration.

        The general path (:meth:`_on_arrival`) re-checks cache, faults
        and scheduler kind on every arrival even though all three are
        fixed for the whole run. Configurations that skip those branches
        get a fused closure — semantically identical, minus the
        per-arrival re-dispatch:

        * no cache + no faults + online scheduler: choose + submit with
          the scheduler-output invariant checks kept;
        * additionally Heuristic + the columnar kernel: the closure
          gathers placement and scores through the fleet directly — the
          chosen disk is one of the request's replicas by construction,
          so the read-placement re-check is redundant.
        """
        if (
            self.cache is not None
            or self._faults is not None
            or self._online_scheduler is None
        ):
            return self._on_arrival
        scheduler = self._online_scheduler
        locations_by_data = self._locations_by_data
        disks = self._disks
        engine = self._engine
        if isinstance(scheduler, HeuristicScheduler) and self.fleet is not None:
            fleet = self.fleet
            fleet_choose = fleet.choose
            cost_function = scheduler.cost_function
            alpha = cost_function.alpha
            beta = cost_function.beta
            load_weight = cost_function.load_weight
            # The replication factor is far below the kernel's cutoff, so
            # every arrival takes FleetCostState.choose's scalar-gather
            # branch — inline it over the captured columns (same
            # arithmetic, same unrolled tie-break) and keep the method
            # call for the general case.
            pi = fleet.pi
            const = fleet.const
            tlast = fleet.tlast
            queue = fleet.queue
            cutoff = SMALL_CANDIDATE_CUTOFF
            # Disk ids are dense (range(num_disks)), so a list of bound
            # submit methods replaces the dict hash + attribute lookup
            # on the hand-off.
            submit_by_disk = [
                disks[disk_id].submit for disk_id in range(len(disks))
            ]

            def heuristic_arrival(request: Request) -> None:
                try:
                    locations = locations_by_data[request.data_id]
                except KeyError:
                    raise PlacementError(f"unknown data id {request.data_id}")
                if not locations:
                    raise ReplicaUnavailableError(
                        f"no live replica for data {request.data_id}"
                    )
                now = engine._now
                if len(locations) < cutoff:
                    best_disk = -1
                    best_cost = 0.0
                    best_queue = 0.0
                    for disk_id in locations:
                        energy = (
                            (now - tlast[disk_id]) * pi[disk_id] + const[disk_id]
                        )
                        queue_length = queue[disk_id]
                        cost = (
                            energy * alpha / beta + queue_length * load_weight
                        )
                        if (
                            best_disk < 0
                            or cost < best_cost
                            or (
                                cost == best_cost
                                and (
                                    queue_length < best_queue
                                    or (
                                        queue_length == best_queue
                                        and disk_id < best_disk
                                    )
                                )
                            )
                        ):
                            best_cost = cost
                            best_queue = queue_length
                            best_disk = disk_id
                else:
                    best_disk = fleet_choose(
                        locations, now, alpha, beta, load_weight
                    )
                submit_by_disk[best_disk](request)

            return heuristic_arrival
        choose = scheduler.choose

        def online_arrival(request: Request) -> None:
            disk_id = choose(request, self)
            if (
                request.op is OpKind.READ
                and disk_id not in locations_by_data.get(request.data_id, ())
            ):
                raise SchedulingError(
                    f"scheduler sent request {request.request_id} to disk "
                    f"{disk_id}, which does not hold data {request.data_id}"
                )
            try:
                disks[disk_id].submit(request)
            except KeyError:
                raise SchedulingError(
                    f"scheduler chose unknown disk {disk_id}"
                )

        return online_arrival

    def _on_arrival(self, request: Request) -> None:
        if (
            self.cache is not None
            and request.op is OpKind.READ
            and self.cache.lookup(request.data_id)
        ):
            self._complete_from_cache(request)
            return
        self._admit(request)

    def _admit(self, request: Request) -> None:
        """Hand a (possibly re-admitted) request to the scheduler.

        Requests none of whose replicas are currently servable never
        reach the scheduler — they back off and retry, or are recorded
        as lost. Re-admissions skip the cache on purpose: the arrival
        already consulted it.
        """
        if self._faults is not None and not self.available_locations(
            request.data_id
        ):
            self._defer_or_lose(request)
            return
        online = self._online_scheduler
        if online is not None:
            self._dispatch(request, online.choose(request, self))
        else:
            self._batch_buffer.append(request)
            self._ensure_tick()

    def _ensure_tick(self) -> None:
        if self._tick_scheduled:
            return
        assert isinstance(self._scheduler, BatchScheduler)
        interval = self._scheduler.interval
        next_tick = math.ceil(self._engine.now / interval) * interval
        if next_tick <= self._engine.now:
            next_tick += interval
        self._engine.schedule(next_tick, self._on_tick)
        self._tick_scheduled = True

    def _on_tick(self) -> None:
        self._tick_scheduled = False
        if not self._batch_buffer:
            return
        assert isinstance(self._scheduler, BatchScheduler)
        batch, self._batch_buffer = self._batch_buffer, []
        if self._faults is not None:
            batch = [
                request
                for request in batch
                if self._servable_or_deferred(request)
            ]
            if not batch:
                return
        decisions = self._scheduler.choose_batch(batch, self)
        for request in batch:
            try:
                disk_id = decisions[request.request_id]
            except KeyError as exc:
                raise SchedulingError(
                    f"batch scheduler left request {request.request_id} "
                    f"undecided at tick t={self._engine.now:.6g}s"
                ) from exc
            self._dispatch(request, disk_id)

    def _dispatch(self, request: Request, disk_id: DiskId) -> None:
        if disk_id not in self._disks:
            raise SchedulingError(f"scheduler chose unknown disk {disk_id}")
        # Reads must land on a replica; off-loaded writes may go anywhere
        # (the write off-loading liberty, Section 2.1).
        if request.op is OpKind.READ and disk_id not in self._locations_by_data.get(
            request.data_id, ()
        ):
            raise SchedulingError(
                f"scheduler sent request {request.request_id} to disk {disk_id}, "
                f"which does not hold data {request.data_id}"
            )
        self._disks[disk_id].submit(request)
        if self._retry_attempts:
            self._retry_attempts.pop(request.request_id, None)
        if self.cache is not None and request.op is OpKind.READ:
            self.cache.insert(
                request.data_id, disk_id, lambda d: self._disks[d].state
            )

    # -- failover (fault injection only) ----------------------------------

    def _servable_or_deferred(self, request: Request) -> bool:
        """True when some replica is live; otherwise defers the request."""
        if self.available_locations(request.data_id):
            return True
        self._defer_or_lose(request)
        return False

    def _on_disk_failed(self, disk_id: DiskId, drained: List[Request]) -> None:
        """Injector callback: ``disk_id`` crash-stopped mid-run.

        Requests drained from its queue are re-dispatched to the least
        loaded surviving replica; placement-driven routing around the
        dead disk happens separately via :meth:`available_locations`.
        """
        del disk_id  # routing consults per-disk health, not the event
        for request in drained:
            self._failover(request)

    def _failover(self, request: Request) -> None:
        candidates = self.available_locations(request.data_id)
        if not candidates:
            self._defer_or_lose(request)
            return
        best = min(
            candidates, key=lambda d: (self._disks[d].queue_length, d)
        )
        self._redispatched += 1
        self._dispatch(request, best)

    def _defer_or_lose(self, request: Request) -> None:
        """Back off and re-admit, or record the request as lost.

        Lost means: every replica is permanently dead, or the retry
        budget is exhausted while all replicas stay unavailable.
        """
        locations = self._catalog.locations(request.data_id)
        attempts = self._retry_attempts.get(request.request_id, 0)
        all_dead = all(
            self._disks[d].health is DiskHealth.FAILED for d in locations
        )
        if all_dead or attempts >= MAX_FAILOVER_ATTEMPTS:
            self._retry_attempts.pop(request.request_id, None)
            self._metrics.on_lost(request, self._engine.now)
            return
        self._retry_attempts[request.request_id] = attempts + 1
        self._failover_retries += 1
        delay = RETRY_BASE_S * (2.0**attempts)
        self._engine.schedule_after(delay, _Readmit(self, request))

    def _complete_from_cache(self, request: Request) -> None:
        """Serve a read from the cache: no disk is touched."""
        home = self.cache.home_disk(request.data_id)

        def deliver() -> None:
            self._metrics.on_complete(request, home, self._engine.now)

        delay = self._config.cache_hit_time
        if delay > 0:
            self._engine.schedule_after(delay, deliver)
        else:
            deliver()


class _Readmit:
    """Backoff-retry callback re-admitting a deferred request."""

    __slots__ = ("_system", "_request")

    def __init__(self, system: StorageSystem, request: Request):
        self._system = system
        self._request = request

    def __call__(self) -> None:
        self._system._admit(self._request)
