"""Simulation configuration."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.cache.policy import BlockCache
from repro.core.fleet import KERNELS, default_kernel
from repro.disk.service import AnalyticServiceModel, ServiceTimeModel
from repro.errors import ConfigurationError
from repro.faults.plan import FaultPlan
from repro.power.policy import PowerPolicy, TwoCompetitivePolicy
from repro.power.profile import BARRACUDA, DiskPowerProfile
from repro.power.states import DiskPowerState
from repro.tape.config import TierConfig


@dataclass(frozen=True)
class SimulationConfig:
    """Everything about a run except the workload and the scheduler.

    Attributes:
        num_disks: ``|D|`` — the paper uses 180.
        profile: Disk power model (paper: Barracuda-like numbers).
        policy: Power-management policy (paper: 2CPM).
        service_model: Per-request I/O time model (paper: Disksim; here
            the analytic seek+rotate+transfer model). Shared by all disks —
            fine for stateless models.
        service_model_factory: Optional per-disk model constructor; wins
            over ``service_model`` when set (use for stateful models like
            :class:`~repro.disk.service.PositionAwareServiceModel`).
        seed: Seed for service-time draws (per-disk RNGs derive from it).
        horizon: Fixed end-of-simulation time. ``None`` derives
            ``last arrival + TB + Tup + Tdown + drain slack`` so different
            schedulers of one experiment share a horizon and their
            energies are directly comparable.
        drain_slack: Extra seconds appended to the derived horizon.
        initial_state: STANDBY (paper's assumption) or IDLE.
        cache_factory: Optional block-cache constructor (one fresh cache
            per run); see :mod:`repro.cache`. ``None`` = no cache, the
            paper's configuration.
        cache_hit_time: Response time charged to a cache hit.
        record_transitions: Keep per-disk ``(time, state)`` transition
            logs (memory-proportional to spin activity) for the
            state-period analyses.
        fault_plan: Optional fault-injection plan (see
            :mod:`repro.faults`). ``None`` — or a plan with no fault
            source, e.g. ``FaultPlan.none()`` — runs the exact pre-fault
            code path and produces byte-identical reports.
        kernel: Cost-kernel selection: ``"numpy"`` mirrors per-disk
            scheduling state into the columnar
            :class:`~repro.core.fleet.FleetCostState` and schedulers
            score through it; ``"python"`` is the pure-Python reference
            path. Both produce byte-identical reports (the determinism
            tier pins this), so the kernel is deliberately *not* part of
            the run's cache identity. Defaults to
            :func:`repro.core.fleet.default_kernel` (the ``--kernel``
            CLI flag / ``REPRO_KERNEL`` environment variable).
        tier: Optional cold-tier configuration (see
            :class:`~repro.tape.config.TierConfig`). ``None`` — the
            default — runs the exact disk-only code path and produces
            byte-identical reports; attaching one routes cold data ids
            to tape via
            :class:`~repro.tape.tier.TieredStorageSystem`.
    """

    num_disks: int
    profile: DiskPowerProfile = BARRACUDA
    policy: PowerPolicy = field(default_factory=TwoCompetitivePolicy)
    service_model: ServiceTimeModel = field(default_factory=AnalyticServiceModel)
    service_model_factory: Optional[Callable[[], ServiceTimeModel]] = None
    seed: int = 0
    horizon: Optional[float] = None
    drain_slack: float = 30.0
    initial_state: DiskPowerState = DiskPowerState.STANDBY
    cache_factory: Optional[Callable[[], BlockCache]] = None
    cache_hit_time: float = 0.0002
    record_transitions: bool = False
    fault_plan: Optional[FaultPlan] = None
    kernel: str = field(default_factory=default_kernel)
    tier: Optional[TierConfig] = None

    def __post_init__(self) -> None:
        if self.num_disks <= 0:
            raise ConfigurationError("num_disks must be positive")
        if self.kernel not in KERNELS:
            raise ConfigurationError(
                f"unknown kernel {self.kernel!r}: expected one of {KERNELS}"
            )
        if self.horizon is not None and self.horizon < 0:
            raise ConfigurationError("horizon must be >= 0")
        if self.drain_slack < 0:
            raise ConfigurationError("drain_slack must be >= 0")
        if self.cache_hit_time < 0:
            raise ConfigurationError("cache_hit_time must be >= 0")

    def make_service_model(self) -> ServiceTimeModel:
        """The service model for one disk (fresh instance when a factory
        is configured, the shared one otherwise)."""
        if self.service_model_factory is not None:
            return self.service_model_factory()
        return self.service_model

    def derived_horizon(self, last_arrival: float) -> float:
        """The horizon used when none is pinned explicitly."""
        if self.horizon is not None:
            return self.horizon
        return (
            last_arrival
            + self.profile.breakeven_time
            + self.profile.transition_time
            + self.drain_slack
        )
