"""Run reports: response times, energy, spin counts, breakdowns.

:class:`MetricsCollector` receives per-request completion callbacks during a
run; :class:`SimulationReport` is the immutable result bundle every
experiment consumes. The report exposes exactly the quantities the paper
plots: total energy (Fig. 6/14), spin operations (Fig. 7/15), mean response
time (Fig. 8/16), response-time distribution (Fig. 12/13) and per-disk
state-time breakdowns (Fig. 9/17).
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.disk.stats import DiskStats
from repro.errors import SimulationError
from repro.power.states import DiskPowerState
from repro.types import DiskId, Request, RequestId


class MetricsCollector:
    """Accumulates per-request completions (and losses) during a simulation.

    The completion callback runs once per serviced request on the
    simulation hot path, so it does the minimum: one tuple append into a
    completion log. Response times and the per-request completion map
    are derived views built on access (each consumed at most once per
    run, by the report builder and by tests respectively).
    """

    __slots__ = ("_log", "_completions_map", "_completions_len", "_lost")

    def __init__(self) -> None:
        # (request_id, disk_id, completion time, response time) per
        # completion, in completion order.
        self._log: List[Tuple[RequestId, DiskId, float, float]] = []
        self._completions_map: Optional[
            Dict[RequestId, Tuple[DiskId, float]]
        ] = None
        self._completions_len = 0
        self._lost: List[RequestId] = []

    def on_complete(self, request: Request, disk_id: DiskId, now: float) -> None:
        """Record one completion (response time = now - arrival)."""
        response = now - request.time
        if response < 0:
            raise SimulationError(
                f"request {request.request_id} completed before it arrived"
            )
        self._log.append((request.request_id, disk_id, now, response))

    @property
    def response_times(self) -> List[float]:
        """Per-request response times in seconds, completion order."""
        return [entry[3] for entry in self._log]

    @property
    def completed(self) -> int:
        return len(self._log)

    def on_lost(self, request: Request, now: float) -> None:
        """Record a request whose every replica is dead (never raised)."""
        if now < request.time:
            raise SimulationError(
                f"request {request.request_id} lost before it arrived"
            )
        self._lost.append(request.request_id)

    @property
    def lost(self) -> int:
        """Requests recorded as lost (no surviving replica)."""
        return len(self._lost)

    @property
    def lost_request_ids(self) -> List[RequestId]:
        """Ids of the lost requests, in loss order."""
        return list(self._lost)

    def _completions(self) -> Dict[RequestId, Tuple[DiskId, float]]:
        """Lazy ``request_id -> (disk, time)`` view over the log."""
        if (
            self._completions_map is None
            or self._completions_len != len(self._log)
        ):
            self._completions_map = {
                entry[0]: (entry[1], entry[2]) for entry in self._log
            }
            self._completions_len = len(self._log)
        return self._completions_map

    def completion_of(self, request_id: RequestId) -> Tuple[DiskId, float]:
        """(disk, completion time) of a finished request."""
        return self._completions()[request_id]

    def disk_of(self, request_id: RequestId) -> DiskId:
        """The disk that serviced a finished request."""
        return self._completions()[request_id][0]


def percentile(sorted_values: Sequence[float], fraction: float) -> float:
    """Nearest-rank percentile over pre-sorted values.

    Args:
        sorted_values: Non-empty ascending sequence.
        fraction: In [0, 1]; 0.9 gives the paper's 90th percentile.
    """
    if not sorted_values:
        raise ValueError("percentile of empty sequence")
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    rank = max(1, math.ceil(fraction * len(sorted_values)))
    return sorted_values[rank - 1]


@dataclass(frozen=True)
class AvailabilityReport:
    """Availability outcome of one fault-injected run.

    Present on a :class:`SimulationReport` only when a fault plan was
    active — runs without fault injection carry ``None`` so their
    serialised form is byte-identical to the pre-fault code.

    Attributes:
        requests_lost: Requests dropped because no replica survived.
        requests_redispatched: Requests re-routed to a surviving replica
            after their disk failed mid-flight.
        failover_retries: Backoff re-admissions of requests that found
            every replica transiently unavailable.
        spin_up_failures: Failed spin-up attempts across all disks.
        disk_failures: Disks that died permanently during the run.
        transient_outages: Transient outages that started during the run.
        downtime_s: Per-disk unavailable seconds (only disks with
            nonzero downtime appear).
        disk_seconds: Total disk-seconds of the run (disks × duration) —
            the denominator of :attr:`availability`.
    """

    requests_lost: int = 0
    requests_redispatched: int = 0
    failover_retries: int = 0
    spin_up_failures: int = 0
    disk_failures: int = 0
    transient_outages: int = 0
    downtime_s: Mapping[DiskId, float] = field(default_factory=dict)
    disk_seconds: float = 0.0

    @property
    def total_downtime_s(self) -> float:
        """Unavailable disk-seconds summed over all disks."""
        return sum(self.downtime_s.values())

    @property
    def availability(self) -> float:
        """Fraction of disk-seconds the fleet was available, in [0, 1]."""
        if self.disk_seconds <= 0:
            return 1.0
        return max(0.0, 1.0 - self.total_downtime_s / self.disk_seconds)

    def loss_fraction(self, requests_offered: int) -> float:
        """Lost requests as a fraction of the offered load."""
        if requests_offered <= 0:
            return 0.0
        return self.requests_lost / requests_offered


@dataclass(frozen=True)
class TapeTierReport:
    """Cold-tier outcome of one tiered (disk + tape) run.

    Present on a :class:`SimulationReport` only when the run had a
    :class:`~repro.tape.config.TierConfig` attached — disk-only runs
    carry ``None`` so their serialised form stays byte-identical to the
    pre-tier code. All quantities are plain primitives: counts, joules,
    seconds and metres.

    Attributes:
        sequencer: LTSP sequencer family the tape drives planned with.
        profile_name: Tape power-profile name.
        num_drives: Tape drives in the cold tier.
        hot_capacity: Data ids the hot (disk) set holds at once.
        requests_to_disk: Requests routed to the disk tier.
        requests_to_tape: Requests routed to the tape tier.
        tape_requests_completed: Tape requests serviced before the end.
        promotions: Tape reads that promoted their data id to the hot
            set (0 when promote-on-access is off).
        demotions: Hot ids evicted back to the cold set by promotions.
        mounts / unmounts: Cartridge mount/unmount operations summed
            over all drives (the tape analogue of spin ups/downs).
        seek_distance_m: Metres of tape wound, summed over all drives.
        tape_energy: Joules consumed by the tape drives (the report's
            ``total_energy`` includes it).
        state_time_s: Seconds per tape power state (by state name)
            summed over all drives.
        tape_response_times: Response times in seconds of the
            tape-serviced requests, completion order.
    """

    sequencer: str
    profile_name: str
    num_drives: int
    hot_capacity: int
    requests_to_disk: int = 0
    requests_to_tape: int = 0
    tape_requests_completed: int = 0
    promotions: int = 0
    demotions: int = 0
    mounts: int = 0
    unmounts: int = 0
    seek_distance_m: float = 0.0
    tape_energy: float = 0.0
    state_time_s: Mapping[str, float] = field(default_factory=dict)
    tape_response_times: Sequence[float] = field(default=(), repr=False)

    @property
    def mean_tape_response_time(self) -> float:
        """Mean tape response time in seconds (0.0 when none completed)."""
        if not self.tape_response_times:
            return 0.0
        return sum(self.tape_response_times) / len(self.tape_response_times)

    def tape_response_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the tape response times."""
        return percentile(sorted(self.tape_response_times), fraction)


@dataclass(frozen=True)
class SimulationReport:
    """Immutable results of one simulation run.

    Attributes:
        scheduler_name: Scheduler that produced the run.
        duration: Simulated seconds covered (trace span + drain time).
        total_energy: Joules summed over all disks.
        disk_stats: Final per-disk ledgers (state time, spin counts).
        response_times: Per-request response times, arrival order.
        requests_offered: Requests fed into the system.
        requests_completed: Requests whose I/O finished before the end.
        cache_hits / cache_misses: Block-cache counters (0 = no cache).
        events_processed: Simulator events fired during the run (cancelled
            timers excluded; 0 for analytically-evaluated offline runs).
        availability: Fault/availability outcome; ``None`` unless the run
            had an active fault plan.
        tape: Cold-tier outcome; ``None`` unless the run was tiered.
    """

    scheduler_name: str
    duration: float
    total_energy: float
    disk_stats: Mapping[DiskId, DiskStats]
    response_times: Sequence[float] = field(repr=False)
    requests_offered: int = 0
    requests_completed: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    events_processed: int = 0
    availability: Optional[AvailabilityReport] = None
    tape: Optional[TapeTierReport] = None

    @property
    def cache_hit_ratio(self) -> float:
        total = self.cache_hits + self.cache_misses
        return self.cache_hits / total if total else 0.0

    @property
    def mean_response_time(self) -> float:
        """Mean response time in seconds (0.0 when nothing completed)."""
        if not self.response_times:
            return 0.0
        return sum(self.response_times) / len(self.response_times)

    def response_percentile(self, fraction: float) -> float:
        """Nearest-rank percentile of the response times."""
        return percentile(sorted(self.response_times), fraction)

    @property
    def spin_ups(self) -> int:
        return sum(stats.spin_ups for stats in self.disk_stats.values())

    @property
    def spin_downs(self) -> int:
        return sum(stats.spin_downs for stats in self.disk_stats.values())

    @property
    def spin_operations(self) -> int:
        """Total spin-up + spin-down operations (Fig. 7 metric)."""
        return self.spin_ups + self.spin_downs

    def state_time_totals(self) -> Dict[DiskPowerState, float]:
        """Seconds per power state summed over all disks."""
        totals = {state: 0.0 for state in DiskPowerState}
        for stats in self.disk_stats.values():
            for state, seconds in stats.state_time.items():
                totals[state] += seconds
        return totals

    def per_disk_fractions(self) -> List[Dict[DiskPowerState, float]]:
        """Per-disk state fractions sorted by descending standby share.

        This is the exact x-axis ordering of the paper's Fig. 9 ("disks
        sorted by their standby time").
        """
        fractions = [stats.state_fractions() for stats in self.disk_stats.values()]
        fractions.sort(key=lambda f: f[DiskPowerState.STANDBY], reverse=True)
        return fractions

    def normalized_energy(self, baseline_energy: float) -> float:
        """Energy as a fraction of a baseline run's joules (always-on)."""
        if baseline_energy <= 0:
            raise ValueError("baseline energy must be positive")
        return self.total_energy / baseline_energy

    def inverse_cdf(
        self, thresholds: Sequence[float]
    ) -> List[Tuple[float, float]]:
        """``P[response time > x]`` for each ``x`` (Fig. 12)."""
        values = sorted(self.response_times)
        n = len(values)
        points: List[Tuple[float, float]] = []
        if n == 0:
            return [(x, 0.0) for x in thresholds]
        for x in thresholds:
            count_greater = n - bisect.bisect_right(values, x)
            points.append((x, count_greater / n))
        return points

    def summary(self) -> str:
        """Multi-line human-readable run summary."""
        lines = [
            f"scheduler            : {self.scheduler_name}",
            f"duration             : {self.duration:.1f} s",
            f"total energy         : {self.total_energy:.0f} J",
            f"spin ups / downs     : {self.spin_ups} / {self.spin_downs}",
            f"requests             : {self.requests_completed}/"
            f"{self.requests_offered} completed",
        ]
        if self.response_times:
            lines.append(
                f"mean / p90 response  : {self.mean_response_time * 1e3:.1f} ms / "
                f"{self.response_percentile(0.9) * 1e3:.1f} ms"
            )
        if self.availability is not None:
            avail = self.availability
            lines.append(
                f"availability         : {avail.availability:.4f} "
                f"({avail.disk_failures} disks died, "
                f"{avail.transient_outages} outages)"
            )
            lines.append(
                f"lost / redispatched  : {avail.requests_lost} / "
                f"{avail.requests_redispatched}"
            )
        if self.tape is not None:
            tape = self.tape
            lines.append(
                f"tier split           : {tape.requests_to_disk} disk / "
                f"{tape.requests_to_tape} tape "
                f"(hot capacity {tape.hot_capacity})"
            )
            lines.append(
                f"tape ({tape.sequencer:>7s})       : "
                f"{tape.tape_energy:.0f} J, "
                f"{tape.seek_distance_m:.0f} m wound, "
                f"{tape.mounts} mounts"
            )
            if tape.tape_response_times:
                lines.append(
                    f"tape mean response   : "
                    f"{tape.mean_tape_response_time:.1f} s"
                )
        return "\n".join(lines)
