"""Core value types shared across the library.

The vocabulary follows Table 1 of the paper:

* ``R = {r1 .. rN}`` — the request stream (:class:`Request`), sorted by disk
  access time ``ti``.
* ``D = {d1 .. dK}`` — disks, identified by small integers (``DiskId``).
* ``B = {b1 .. bM}`` — data items, identified by integers (``DataId``).
* ``L`` — the placement assignment mapping each data item to an ordered list
  of disk locations (see :mod:`repro.placement.catalog`).

A *schedule* (``S_ES`` in the paper) maps each request to one of its data
locations; :class:`Assignment` is the concrete representation used by the
offline machinery.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, Iterable, List, Mapping, Sequence, Tuple

DiskId = int
DataId = int
RequestId = int

#: Block size the paper associates with one request (Section 2.1).
DEFAULT_REQUEST_BYTES = 512 * 1024


class OpKind(Enum):
    """I/O direction of a trace record.

    The scheduler only handles reads (the paper assumes writes are diverted
    by write off-loading); writes survive in traces so workloads can report
    realistic mixes before filtering.
    """

    READ = "read"
    WRITE = "write"


@dataclass(frozen=True, order=True, slots=True)
class Request:
    """A single read request ``ri`` with disk access time ``ti``.

    Ordering is by ``(time, request_id)`` so a sorted request stream matches
    the paper's convention that ``R`` is sorted by time in increasing order.

    Attributes:
        time: Disk access time ``ti`` in seconds (the time a disk receives
            the request under the online model; the arrival time used for
            queueing-delay accounting under the batch model).
        request_id: Position of the request in the stream (unique).
        data_id: Identity of the requested data item ``bi``.
        size_bytes: Payload size; used only by the disk service-time model.
        op: Read or write. The paper's schedulers handle reads; writes are
            carried so the write off-loading extension
            (:mod:`repro.core.writeoffload`) can divert them.
    """

    time: float
    request_id: RequestId
    data_id: DataId = field(compare=False)
    size_bytes: int = field(default=DEFAULT_REQUEST_BYTES, compare=False)
    op: OpKind = field(default=OpKind.READ, compare=False)

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"request time must be >= 0, got {self.time}")
        if self.size_bytes <= 0:
            raise ValueError(f"request size must be positive, got {self.size_bytes}")


class Assignment:
    """A schedule: the disk chosen for every request.

    Thin wrapper over ``dict[RequestId, DiskId]`` that also remembers the
    request objects so evaluators can recover per-disk request chains.
    """

    def __init__(self, requests: Sequence[Request]):
        self._requests: Dict[RequestId, Request] = {r.request_id: r for r in requests}
        if len(self._requests) != len(requests):
            raise ValueError("duplicate request ids in request stream")
        self._disk_of: Dict[RequestId, DiskId] = {}

    def __len__(self) -> int:
        return len(self._disk_of)

    def __contains__(self, request_id: RequestId) -> bool:
        return request_id in self._disk_of

    def assign(self, request_id: RequestId, disk_id: DiskId) -> None:
        """Record that ``request_id`` is scheduled on ``disk_id``.

        Re-assigning to a *different* disk raises; idempotent re-assignment
        to the same disk is allowed (the MWIS derivation touches a request
        once as predecessor and once as successor).
        """
        if request_id not in self._requests:
            raise KeyError(f"unknown request id {request_id}")
        previous = self._disk_of.get(request_id)
        if previous is not None and previous != disk_id:
            raise ValueError(
                f"request {request_id} already assigned to disk {previous}, "
                f"cannot move to disk {disk_id}"
            )
        self._disk_of[request_id] = disk_id

    def disk_of(self, request_id: RequestId) -> DiskId:
        """The assigned disk (KeyError when unassigned)."""
        return self._disk_of[request_id]

    def get(self, request_id: RequestId) -> DiskId | None:
        """The assigned disk, or None."""
        return self._disk_of.get(request_id)

    @property
    def requests(self) -> Tuple[Request, ...]:
        return tuple(sorted(self._requests.values()))

    def is_complete(self) -> bool:
        """True when every request in the stream has a disk."""
        return len(self._disk_of) == len(self._requests)

    def unassigned(self) -> List[Request]:
        """Requests without a disk yet, sorted by time."""
        return sorted(
            r for rid, r in self._requests.items() if rid not in self._disk_of
        )

    def chains(self) -> Dict[DiskId, List[Request]]:
        """Per-disk request chains, each sorted by time.

        The *chain* of a disk is the time-ordered sequence of requests it
        services; consecutive chain entries are the (predecessor, successor)
        pairs whose gaps determine offline energy (Lemma 1).
        """
        by_disk: Dict[DiskId, List[Request]] = {}
        for rid, disk in self._disk_of.items():
            by_disk.setdefault(disk, []).append(self._requests[rid])
        for chain in by_disk.values():
            chain.sort()
        return by_disk

    def items(self) -> Iterable[Tuple[RequestId, DiskId]]:
        """(request id, disk) pairs of the assigned requests."""
        return self._disk_of.items()

    def as_dict(self) -> Dict[RequestId, DiskId]:
        """A plain dict copy of the mapping."""
        return dict(self._disk_of)

    @classmethod
    def from_mapping(
        cls, requests: Sequence[Request], mapping: Mapping[RequestId, DiskId]
    ) -> "Assignment":
        assignment = cls(requests)
        for request_id, disk_id in mapping.items():
            assignment.assign(request_id, disk_id)
        return assignment
