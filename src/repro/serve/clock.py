"""Virtual-time asyncio: deterministic service runs without wall sleeps.

The serving layer is ordinary asyncio code — it awaits ``asyncio.sleep``
and reads ``loop.time()``. Determinism comes from *which loop* runs it:

* :class:`VirtualTimeLoop` is a selector event loop whose clock is a
  plain float starting at 0.0. Whenever no callback is ready but timers
  are scheduled, the clock **jumps** to the earliest timer instead of
  blocking in ``select``; a run over hours of simulated traffic finishes
  in milliseconds of wall time and is bit-reproducible.
* Under a normal loop the very same service code runs against the wall
  clock (``repro-storage serve --wall``).

:class:`ServiceClock` gives the service a zero-based timeline (seconds
since service start) on either loop, which is also the timeline of the
injected :class:`~repro.sim.engine.SimulationEngine` — the asyncio clock
and the simulation clock tick in the same unit from the same origin.
"""

from __future__ import annotations

import asyncio
from typing import Any, Coroutine, TypeVar

_T = TypeVar("_T")


class VirtualTimeLoop(asyncio.SelectorEventLoop):
    """A selector event loop on virtual time (starts at 0.0 seconds).

    ``time()`` returns the virtual clock. One hook does all the work:
    when a scheduling round starts with no ready callbacks, the clock
    jumps forward to the earliest scheduled timer, so every
    ``asyncio.sleep``/``call_later`` fires immediately in wall terms but
    in exact deadline order on the virtual timeline. Callback and timer
    ordering is untouched — it is the stock asyncio FIFO/heap order —
    which keeps runs deterministic for a fixed program and seed.
    """

    def __init__(self) -> None:
        super().__init__()
        self._virtual_now_s = 0.0

    def time(self) -> float:
        """Virtual seconds since the loop was created."""
        return self._virtual_now_s

    def _run_once(self) -> None:
        ready = self._ready  # type: ignore[attr-defined]
        scheduled = self._scheduled  # type: ignore[attr-defined]
        if scheduled:
            when = scheduled[0]._when
            if when > self._virtual_now_s and (
                not ready
                or when
                <= self._virtual_now_s
                + self._clock_resolution  # type: ignore[attr-defined]
            ):
                # Two cases advance the clock. (1) Nothing runnable now:
                # jump to the next deadline (a cancelled head timer only
                # makes the jump conservative, never past the next live
                # deadline). (2) Callbacks are runnable AND the head
                # deadline is within the base loop's clock resolution:
                # the base ``_run_once`` is about to fire that timer this
                # very cycle, so the clock must land on its deadline
                # first — otherwise a timer one float ulp ahead fires
                # "due to resolution slack" with time frozen, and a
                # retry loop around a short timeout spins forever at one
                # instant.
                self._virtual_now_s = when
        super()._run_once()  # type: ignore[misc]


def virtual_run(main: Coroutine[Any, Any, _T]) -> _T:
    """Run ``main`` to completion on a fresh :class:`VirtualTimeLoop`.

    The deterministic counterpart of ``asyncio.run``: all sleeps resolve
    in virtual time, so the call returns as fast as the Python work
    itself allows regardless of how many simulated seconds elapse.
    """
    loop = VirtualTimeLoop()
    try:
        return loop.run_until_complete(main)
    finally:
        try:
            loop.run_until_complete(loop.shutdown_asyncgens())
        finally:
            loop.close()


class ServiceClock:
    """Seconds since service start, on whatever loop is running.

    Construct inside a running coroutine; ``now`` is then 0.0 at
    construction and advances with the loop's clock (virtual or wall).
    """

    __slots__ = ("_loop", "_epoch_s")

    def __init__(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._epoch_s = self._loop.time()

    @property
    def now(self) -> float:
        """Seconds elapsed since this clock was created."""
        return self._loop.time() - self._epoch_s

    async def sleep(self, delay_s: float) -> None:
        """Sleep ``delay_s`` seconds (non-positive: yield one loop turn)."""
        await asyncio.sleep(delay_s if delay_s > 0 else 0)

    async def sleep_until(self, time_s: float) -> None:
        """Sleep until the clock reads ``time_s`` seconds."""
        await self.sleep(time_s - self.now)


__all__ = ["ServiceClock", "VirtualTimeLoop", "virtual_run"]
