"""Fan-out/fan-in: route a load schedule across shard workers.

The router owns the deployment lifecycle: it expands the topology,
precomputes the open-loop schedule (byte-identical to the unsharded
load generator's), routes every request to its ring owner, and folds
the per-shard results back into one globally-ordered outcome stream.

Two execution paths share all of that logic and differ only in *where*
shard sessions run:

* **serial** — every shard session runs in-process, one after another.
  This is the reference path the determinism tier compares against.
* **multiprocess** — one worker process per shard, owned by a
  :class:`~repro.serve.shard.supervisor.ShardSupervisor` behind
  request/response queue pairs (the PR 2 ``SweepRunner`` pickling
  seams). The collection barrier polls worker liveness *and* a
  heartbeat-fed response timeout, so a shard dying — or hanging —
  mid-run degrades into typed outcomes instead of a wedge.

What happens to a dead shard's keyspace depends on the topology:

* ``shard_replication_factor = 1`` (default): replicas never span
  shards, so the keyspace is *shed* as typed ``shard_down`` rejections
  — availability degrades in exactly the paper's per-partition shape.
* ``R > 1``: every data id also lives on ``R - 1`` replica shards
  (:func:`~repro.serve.shard.topology.replica_table`), and the router
  fails a dead shard's keys over to the next live replica shard in
  deterministic table order. Completions that travelled through
  failover are counted (and their latency folded into the merged
  ``failover.latency_s`` histogram); a request whose *replica* shard
  then also dies is shed as the diagnosably-distinct ``failed_over``.
* **supervised recovery**: scripted ``recover_at_s`` restarts (or
  barrier-time escalation with ``supervise=True``) respawn the dead
  worker from its derived seed and replay its outbox — the restarted
  virtual session reproduces the lost incarnation exactly, so
  first-wins request-id dedup makes duplicate replies harmless.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.serve.admission import Completed, Outcome, Rejected, RejectReason
from repro.serve.loadgen import LOOP_OPEN, LoadgenConfig, open_loop_schedule
from repro.serve.shard.messages import (
    ShardHang,
    ShardKill,
    ShardRequest,
    ShardResult,
)
from repro.serve.shard.supervisor import (
    BARRIER_POLL_S,
    REQUEST_CHUNK,
    RecoveryReport,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.serve.shard.topology import (
    ShardSpec,
    ShardedServiceConfig,
    assign_data,
    build_topology,
    replica_table,
)
from repro.serve.shard.worker import run_shard_session

#: Hang-escalation default when hang injection is scripted but no
#: explicit response timeout was given (wall seconds of worker silence).
DEFAULT_RESPONSE_TIMEOUT_S = 30.0

#: One scripted chaos/recovery step: ``(time_s, priority, shard_id,
#: kind, kill)``. Priority orders same-instant steps: recoveries before
#: kills (so kill-during-recovery at one instant hits the *new*
#: incarnation), kills before hangs.
_Event = Tuple[float, int, int, str, Optional[ShardKill]]


@dataclass(frozen=True)
class ShardedRunResult:
    """One finished sharded run, reassembled.

    Attributes:
        outcomes: Every outcome in global schedule order (index 0 is
            the first scheduled arrival).
        shard_results: Live shards' session results, shard-id order.
            Shards that died mid-run (and never recovered) have no
            entry.
        shards_down: Ids of shards down at the end of the run,
            ascending. A killed-then-recovered shard is *not* here.
        requests_lost: Outcomes the *router* synthesised as terminal
            rejections (``shard_down`` plus ``failed_over``).
        router_wall_s: Wall seconds for the whole run, including
            process management (measurement only; never serialised
            into reports).
        router_cpu_s: CPU seconds burnt by the router process itself
            during the run (in the serial path this *includes* shard
            compute, which ran in-process).
        multiprocess: Which execution path produced this.
        requests_failed_over: Requests served by (or parked on) a
            shard other than their primary owner because the owner was
            down.
        requests_replayed: Outbox messages re-sent to restarted
            workers across every recovery.
        duplicates_suppressed: Duplicate per-request outcomes dropped
            by first-wins request-id dedup at the merge.
        failed_over_indices: Global schedule indices that travelled
            through failover, ascending.
        recoveries: One :class:`RecoveryReport` per completed worker
            recovery, oldest first.
    """

    outcomes: Tuple[Outcome, ...]
    shard_results: Tuple[ShardResult, ...]
    shards_down: Tuple[int, ...]
    requests_lost: int
    router_wall_s: float
    router_cpu_s: float
    multiprocess: bool
    requests_failed_over: int = 0
    requests_replayed: int = 0
    duplicates_suppressed: int = 0
    failed_over_indices: Tuple[int, ...] = ()
    recoveries: Tuple[RecoveryReport, ...] = ()

    @property
    def events_processed(self) -> int:
        """Engine events across all surviving shards."""
        return sum(r.events_processed for r in self.shard_results)

    @property
    def total_compute_cpu_s(self) -> float:
        """Sum of per-shard in-worker CPU time."""
        return sum(r.compute_cpu_s for r in self.shard_results)

    @property
    def overhead_cpu_s(self) -> float:
        """Router-side CPU not spent inside a shard session.

        Multiprocess: all router-process CPU is overhead (shard compute
        burns in the workers). Serial: shard sessions ran on the router
        process's own CPU clock, so subtract them back out.
        """
        if self.multiprocess:
            return self.router_cpu_s
        return max(0.0, self.router_cpu_s - self.total_compute_cpu_s)

    @property
    def critical_path_s(self) -> float:
        """Router overhead plus the slowest shard's compute, CPU seconds.

        The scaling metric ``serve_scale`` reports: on a single-core
        host the workers time-slice, so raw wall time cannot show
        scale-out — but each shard's *CPU* time shrinks with its share
        of the keyspace regardless, and overhead + slowest-shard CPU is
        the wall time an N-core host approaches.
        """
        slowest_s = max(
            (r.compute_cpu_s for r in self.shard_results), default=0.0
        )
        return self.overhead_cpu_s + slowest_s

    @property
    def events_per_sec_wall(self) -> float:
        """Aggregate rate against raw router wall time."""
        if self.router_wall_s <= 0:
            return 0.0
        return self.events_processed / self.router_wall_s

    @property
    def events_per_sec_critical(self) -> float:
        """Aggregate rate against the critical path (scale-out metric)."""
        critical_s = self.critical_path_s
        if critical_s <= 0:
            return 0.0
        return self.events_processed / critical_s

    @property
    def availability(self) -> float:
        """Completed fraction of the offered schedule (the SLO bound)."""
        if not self.outcomes:
            return 0.0
        completed = sum(
            1 for outcome in self.outcomes if isinstance(outcome, Completed)
        )
        return completed / len(self.outcomes)


def plan_messages(
    config: ShardedServiceConfig, load: LoadgenConfig
) -> List[ShardRequest]:
    """The global request stream, schedule order, ready to route.

    Reuses :func:`~repro.serve.loadgen.open_loop_schedule`, so the
    stream (arrival instants, client round-robin, Zipf data ids) is
    byte-identical to what an unsharded open-loop session with the same
    :class:`LoadgenConfig` would generate.
    """
    if load.loop != LOOP_OPEN:
        raise ConfigurationError(
            "sharded serving routes a precomputed open-loop schedule; "
            f"closed-loop sessions are single-process only (got {load.loop!r})"
        )
    schedule = open_loop_schedule(load, config.num_data)
    return [
        ShardRequest(
            index=index,
            arrival_s=arrival_s,
            client_id=client_id,
            data_id=data_id,
        )
        for index, (arrival_s, client_id, data_id) in enumerate(schedule)
    ]


def _validate_chaos(
    config: ShardedServiceConfig,
    kills: Sequence[ShardKill],
    hangs: Sequence[ShardHang],
    supervise: bool,
) -> List[_Event]:
    """Check the chaos script and compile it to a sorted event list."""
    by_shard: Dict[int, List[ShardKill]] = {}
    for kill in kills:
        if not 0 <= kill.shard_id < config.num_shards:
            raise ConfigurationError(
                f"kill targets unknown shard {kill.shard_id}; "
                f"deployment has shards 0..{config.num_shards - 1}"
            )
        if kill.time_s < 0:
            raise ConfigurationError(
                f"kill time must be >= 0, got {kill.time_s}"
            )
        if kill.recover_at_s is not None and kill.recover_at_s < kill.time_s:
            raise ConfigurationError(
                f"recover_at_s={kill.recover_at_s} precedes the kill at "
                f"{kill.time_s} on shard {kill.shard_id}"
            )
        by_shard.setdefault(kill.shard_id, []).append(kill)
    for shard_id, sequence in by_shard.items():
        sequence.sort(key=lambda kill: kill.time_s)
        for previous, following in zip(sequence, sequence[1:]):
            if previous.recover_at_s is None:
                raise ConfigurationError(
                    f"shard {shard_id} is killed twice but the first kill "
                    "never recovers; at most one kill per shard unless "
                    "each earlier kill sets recover_at_s"
                )
            if following.time_s < previous.recover_at_s:
                raise ConfigurationError(
                    f"shard {shard_id}: kill at {following.time_s} lands "
                    f"inside the previous outage (recovery at "
                    f"{previous.recover_at_s})"
                )
    hang_shards = [hang.shard_id for hang in hangs]
    if len(set(hang_shards)) != len(hang_shards):
        raise ConfigurationError("at most one hang per shard")
    for hang in hangs:
        if not 0 <= hang.shard_id < config.num_shards:
            raise ConfigurationError(
                f"hang targets unknown shard {hang.shard_id}; "
                f"deployment has shards 0..{config.num_shards - 1}"
            )
        if hang.time_s < 0:
            raise ConfigurationError(
                f"hang time must be >= 0, got {hang.time_s}"
            )
        if hang.shard_id in by_shard:
            raise ConfigurationError(
                f"shard {hang.shard_id} is both hung and killed; script "
                "one failure mode per shard (escalation handles the rest)"
            )
    terminal = {
        shard_id
        for shard_id, sequence in by_shard.items()
        if sequence[-1].recover_at_s is None
    }
    if (
        not supervise
        and config.shard_replication_factor == 1
        and len(terminal) >= config.num_shards
    ):
        raise ConfigurationError("cannot kill every shard in the deployment")
    events: List[_Event] = []
    for kill in kills:
        events.append((kill.time_s, 1, kill.shard_id, "kill", kill))
        if kill.recover_at_s is not None:
            events.append(
                (kill.recover_at_s, 0, kill.shard_id, "recover", kill)
            )
    for hang in hangs:
        events.append((hang.time_s, 2, hang.shard_id, "hang", None))
    events.sort(key=lambda event: event[:3])
    return events


def run_sharded(
    config: ShardedServiceConfig,
    load: LoadgenConfig,
    multiprocess: bool = True,
    kills: Sequence[ShardKill] = (),
    hangs: Sequence[ShardHang] = (),
    supervise: bool = False,
    response_timeout_s: Optional[float] = None,
    barrier_timeout_s: Optional[float] = None,
) -> ShardedRunResult:
    """Run one sharded serving session end to end (blocking).

    Args:
        config: The deployment.
        load: The open-loop workload.
        multiprocess: Worker processes (True) or the in-process serial
            reference path (False).
        kills: Chaos drill: SIGKILL each victim shard just before the
            first arrival at or past its ``time_s``; a kill carrying
            ``recover_at_s`` is restarted (outbox replayed) at that
            schedule instant. Multiprocess only.
        hangs: Chaos drill: SIGSTOP each victim at its schedule
            instant — alive but silent, the failure mode the response
            timeout exists for. Multiprocess only.
        supervise: Restart dead or escalated workers at the collection
            barrier when their outbox still holds unanswered requests
            (instead of shedding their keyspace).
        response_timeout_s: Barrier-side silence budget per shard
            before escalation; defaults to
            :data:`DEFAULT_RESPONSE_TIMEOUT_S` when hangs are scripted,
            else off.
        barrier_timeout_s: Optional wall-clock cap on the whole
            collection barrier (None = wait for liveness to settle
            naturally).

    Returns:
        The reassembled :class:`ShardedRunResult`.
    """
    if (kills or hangs) and not multiprocess:
        raise ConfigurationError(
            "chaos drills need worker processes; serial runs cannot lose a shard"
        )
    events = _validate_chaos(config, kills, hangs, supervise)
    if hangs and response_timeout_s is None:
        response_timeout_s = DEFAULT_RESPONSE_TIMEOUT_S
    routing_table = assign_data(config)
    specs = build_topology(config, routing_table)
    messages = plan_messages(config, load)
    owners = [routing_table[message.data_id] for message in messages]
    replicas = replica_table(config, routing_table)
    supervisor_config = SupervisorConfig(
        supervise=supervise, response_timeout_s=response_timeout_s
    )
    # Wall/CPU reads below measure router cost only; routing decisions
    # and outcomes never depend on them.
    started_wall_s = time.perf_counter()  # reprolint: disable=RPL101
    started_cpu_s = time.process_time()  # reprolint: disable=RPL101
    if multiprocess:
        run = _run_multiprocess(
            config,
            specs,
            messages,
            owners,
            replicas,
            events,
            supervisor_config,
            barrier_timeout_s,
        )
    else:
        run = _run_serial(specs, messages, owners)
    elapsed_wall_s = time.perf_counter() - started_wall_s  # reprolint: disable=RPL101
    elapsed_cpu_s = time.process_time() - started_cpu_s  # reprolint: disable=RPL101
    return ShardedRunResult(
        outcomes=tuple(run.outcomes),
        shard_results=tuple(run.results),
        shards_down=tuple(sorted(run.down)),
        requests_lost=run.lost,
        router_wall_s=elapsed_wall_s,
        router_cpu_s=elapsed_cpu_s,
        multiprocess=multiprocess,
        requests_failed_over=len(run.failed_over),
        requests_replayed=run.replayed,
        duplicates_suppressed=run.duplicates,
        failed_over_indices=tuple(sorted(run.failed_over)),
        recoveries=run.recoveries,
    )


@dataclass
class _RunOutput:
    """What either execution path hands back to :func:`run_sharded`."""

    outcomes: List[Outcome]
    results: List[ShardResult]
    down: List[int]
    lost: int
    failed_over: Set[int]
    replayed: int
    duplicates: int
    recoveries: Tuple[RecoveryReport, ...]


def _terminal_outcome(message: ShardRequest, reason: RejectReason) -> Rejected:
    return Rejected(
        client_id=message.client_id,
        data_id=message.data_id,
        reason=reason,
        rejected_s=message.arrival_s,
    )


def _place_outcomes(
    slots: List[Optional[Outcome]], result: ShardResult
) -> int:
    """First-wins placement; returns duplicates suppressed.

    Duplicates can only arise from a recovery race (a worker answered
    at the same moment the barrier escalated it, and its replayed
    successor answered again). Replay determinism makes both answers
    identical, which is what makes first-wins safe.
    """
    duplicates = 0
    for position, index in enumerate(result.indices):
        if slots[index] is None:
            slots[index] = result.outcomes[position]
        else:
            duplicates += 1
    return duplicates


def _run_serial(
    specs: Sequence[ShardSpec],
    messages: Sequence[ShardRequest],
    owners: Sequence[int],
) -> _RunOutput:
    """Reference path: each shard session runs in-process, shard order."""
    per_shard: Dict[int, List[Optional[ShardRequest]]] = {
        spec.shard_id: [] for spec in specs
    }
    for message, owner in zip(messages, owners):
        per_shard[owner].append(message)
    slots: List[Optional[Outcome]] = [None] * len(messages)
    results: List[ShardResult] = []
    for spec in specs:
        result = run_shard_session(spec, per_shard[spec.shard_id])
        results.append(result)
        _place_outcomes(slots, result)
    return _RunOutput(
        outcomes=_finish(slots, messages),
        results=results,
        down=[],
        lost=0,
        failed_over=set(),
        replayed=0,
        duplicates=0,
        recoveries=(),
    )


def _run_multiprocess(
    config: ShardedServiceConfig,
    specs: Sequence[ShardSpec],
    messages: Sequence[ShardRequest],
    owners: Sequence[int],
    replicas: Sequence[Tuple[int, ...]],
    events: List[_Event],
    supervisor_config: SupervisorConfig,
    barrier_timeout_s: Optional[float],
) -> _RunOutput:
    """One supervised worker process per shard."""
    # fork keeps startup cheap on the platforms CI runs; everything on
    # the queues is picklable, so spawn-only platforms work too.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    supervisor = ShardSupervisor(context, specs, supervisor_config)
    supervise = supervisor_config.supervise
    replicated = config.shard_replication_factor > 1
    slots: List[Optional[Outcome]] = [None] * len(messages)
    failed_over: Set[int] = set()
    pending_recovery: Set[int] = set()
    lost = 0

    def terminal(message: ShardRequest, dead_shard: int) -> None:
        """Synthesise the typed loss for one unanswerable request."""
        nonlocal lost
        reason = (
            RejectReason.SHARD_DOWN
            if owners[message.index] == dead_shard
            else RejectReason.FAILED_OVER
        )
        slots[message.index] = _terminal_outcome(message, reason)
        lost += 1

    def route(message: ShardRequest) -> None:
        """Send one request to the first usable shard in replica order."""
        chain = replicas[message.data_id]
        primary = chain[0]
        target = next(
            (shard for shard in chain if supervisor.is_live(shard)), None
        )
        if target is None:
            # No live replica. Park on a holder that will be restarted
            # (scripted recovery, or barrier restart when supervising)
            # so the replay answers it; otherwise the key is lost.
            target = next(
                (
                    shard
                    for shard in chain
                    if shard in pending_recovery or supervise
                ),
                None,
            )
            if target is None:
                terminal(message, primary)
                return
        supervisor.enqueue(target, message)
        if target != primary:
            failed_over.add(message.index)
            supervisor.note_failover(primary)

    def on_kill(kill: ShardKill) -> None:
        # Pre-kill arrivals must actually be *sent* before the victim
        # dies, or the drill would shed them spuriously.
        supervisor.flush_all()
        victim = kill.shard_id
        supervisor.kill(victim)
        if kill.recover_at_s is not None:
            # The scripted restart will replay the outbox verbatim.
            pending_recovery.add(victim)
            return
        if not replicated:
            # Keyspace amputated (or, when supervising, replayed whole
            # at the barrier restart): the outbox stays put either way.
            return
        # Unanswered outbox messages move to the next live replica —
        # results only travel at session end, so nothing was answered.
        outbox = supervisor.outbox(victim)
        supervisor.drop_outbox(victim)
        for message in outbox:
            chain = replicas[message.data_id]
            target = next(
                (shard for shard in chain if supervisor.is_live(shard)), None
            )
            if target is None:
                if supervise:
                    # Park back on the victim; its barrier restart
                    # replays exactly these strays.
                    supervisor.enqueue(victim, message)
                else:
                    terminal(message, victim)
                continue
            supervisor.enqueue(target, message)
            if target != owners[message.index]:
                failed_over.add(message.index)
            supervisor.note_failover(victim)

    def on_event(event: _Event) -> None:
        _time_s, _priority, shard_id, kind, _kill = event
        if kind == "kill":
            assert _kill is not None
            on_kill(_kill)
        elif kind == "hang":
            supervisor.flush(shard_id)
            supervisor.hang(shard_id)
        else:  # recover
            pending_recovery.discard(shard_id)
            supervisor.restart(shard_id)

    try:
        supervisor.start()
        cursor = 0
        for message in messages:
            while (
                cursor < len(events)
                and message.arrival_s >= events[cursor][0]
            ):
                on_event(events[cursor])
                cursor += 1
            route(message)
        # Steps scheduled past the last arrival still run — a recovery
        # at the schedule tail must rejoin (and replay) within the run.
        while cursor < len(events):
            on_event(events[cursor])
            cursor += 1
        supervisor.close_streams()
        results, _ = supervisor.collect(barrier_timeout_s)
        results.sort(key=lambda result: result.shard_id)
        duplicates = 0
        for result in results:
            found = _place_outcomes(slots, result)
            duplicates += found
            supervisor.note_duplicates(result.shard_id, found)
        # Requests parked on (or sent to) a shard that is down for good
        # are lost: synthesise their typed outcomes at the arrival
        # instant — shard_down for the primary's own keys, failed_over
        # for keys that had already been re-routed onto the corpse.
        down = list(supervisor.down_shards)
        for shard_id in down:
            for message in supervisor.outbox(shard_id):
                if slots[message.index] is None:
                    terminal(message, shard_id)
        return _RunOutput(
            outcomes=_finish(slots, messages),
            results=results,
            down=down,
            lost=lost,
            failed_over=failed_over,
            replayed=supervisor.requests_replayed,
            duplicates=duplicates,
            recoveries=supervisor.recovery_reports(),
        )
    finally:
        supervisor.shutdown()


def _finish(
    slots: List[Optional[Outcome]], messages: Sequence[ShardRequest]
) -> List[Outcome]:
    """Assert every schedule slot resolved and drop the Optional."""
    outcomes: List[Outcome] = []
    for index, slot in enumerate(slots):
        if slot is None:
            raise SimulationError(
                f"request {index} (data {messages[index].data_id}) has no "
                "outcome after the collection barrier"
            )
        outcomes.append(slot)
    return outcomes


__all__ = [
    "BARRIER_POLL_S",
    "DEFAULT_RESPONSE_TIMEOUT_S",
    "REQUEST_CHUNK",
    "ShardedRunResult",
    "plan_messages",
    "run_sharded",
]
