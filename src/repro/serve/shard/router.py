"""Fan-out/fan-in: route a load schedule across shard workers.

The router owns the deployment lifecycle: it expands the topology,
precomputes the open-loop schedule (byte-identical to the unsharded
load generator's), routes every request to its ring owner, and folds
the per-shard results back into one globally-ordered outcome stream.

Two execution paths share all of that logic and differ only in *where*
shard sessions run:

* **serial** — every shard session runs in-process, one after another.
  This is the reference path the determinism tier compares against.
* **multiprocess** — one worker process per shard behind a
  request/response queue pair (the PR 2 ``SweepRunner`` pickling
  seams). The collection barrier polls worker liveness, so a shard
  dying mid-run (the chaos drill's SIGKILL, or a crash) degrades into
  typed ``shard_down`` outcomes instead of a hang — the satellite fix
  for the PR 5 drain deadline assuming one shared clock: there is no
  cross-process clock to wait on, only queues and liveness.

Replicas of an object never span shards (the topology builds each
shard's catalog over its own data subset), so a dead shard's keyspace
is *shed*, never re-routed — availability degrades in exactly the
paper's per-partition shape.
"""

from __future__ import annotations

import multiprocessing
import queue
import time
from dataclasses import dataclass
from multiprocessing.process import BaseProcess
from multiprocessing.queues import Queue as MpQueue
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.serve.admission import Outcome, Rejected, RejectReason
from repro.serve.loadgen import LOOP_OPEN, LoadgenConfig, open_loop_schedule
from repro.serve.shard.messages import (
    ShardFailure,
    ShardKill,
    ShardRequest,
    ShardResult,
)
from repro.serve.shard.topology import (
    ShardSpec,
    ShardedServiceConfig,
    assign_data,
    build_topology,
)
from repro.serve.shard.worker import run_shard_session, shard_worker_main

#: Collection-barrier liveness poll interval (wall seconds).
BARRIER_POLL_S = 0.2

#: Requests per queue put. Chunking amortises pickle + pipe overhead
#: (one serialisation per chunk, not per request); the worker flattens
#: chunks back into the identical ordered stream, and every chunk
#: boundary is forced flush-before-kill, so chaos timing is unaffected.
REQUEST_CHUNK = 256


@dataclass(frozen=True)
class ShardedRunResult:
    """One finished sharded run, reassembled.

    Attributes:
        outcomes: Every outcome in global schedule order (index 0 is
            the first scheduled arrival).
        shard_results: Live shards' session results, shard-id order.
            Shards that died mid-run have no entry.
        shards_down: Ids of shards that died, ascending.
        requests_lost: Outcomes the *router* synthesised as
            ``shard_down`` (shed before send plus sent-but-unanswered).
        router_wall_s: Wall seconds for the whole run, including
            process management (measurement only; never serialised
            into reports).
        router_cpu_s: CPU seconds burnt by the router process itself
            during the run (in the serial path this *includes* shard
            compute, which ran in-process).
        multiprocess: Which execution path produced this.
    """

    outcomes: Tuple[Outcome, ...]
    shard_results: Tuple[ShardResult, ...]
    shards_down: Tuple[int, ...]
    requests_lost: int
    router_wall_s: float
    router_cpu_s: float
    multiprocess: bool

    @property
    def events_processed(self) -> int:
        """Engine events across all surviving shards."""
        return sum(r.events_processed for r in self.shard_results)

    @property
    def total_compute_cpu_s(self) -> float:
        """Sum of per-shard in-worker CPU time."""
        return sum(r.compute_cpu_s for r in self.shard_results)

    @property
    def overhead_cpu_s(self) -> float:
        """Router-side CPU not spent inside a shard session.

        Multiprocess: all router-process CPU is overhead (shard compute
        burns in the workers). Serial: shard sessions ran on the router
        process's own CPU clock, so subtract them back out.
        """
        if self.multiprocess:
            return self.router_cpu_s
        return max(0.0, self.router_cpu_s - self.total_compute_cpu_s)

    @property
    def critical_path_s(self) -> float:
        """Router overhead plus the slowest shard's compute, CPU seconds.

        The scaling metric ``serve_scale`` reports: on a single-core
        host the workers time-slice, so raw wall time cannot show
        scale-out — but each shard's *CPU* time shrinks with its share
        of the keyspace regardless, and overhead + slowest-shard CPU is
        the wall time an N-core host approaches.
        """
        slowest_s = max(
            (r.compute_cpu_s for r in self.shard_results), default=0.0
        )
        return self.overhead_cpu_s + slowest_s

    @property
    def events_per_sec_wall(self) -> float:
        """Aggregate rate against raw router wall time."""
        if self.router_wall_s <= 0:
            return 0.0
        return self.events_processed / self.router_wall_s

    @property
    def events_per_sec_critical(self) -> float:
        """Aggregate rate against the critical path (scale-out metric)."""
        critical_s = self.critical_path_s
        if critical_s <= 0:
            return 0.0
        return self.events_processed / critical_s


def plan_messages(
    config: ShardedServiceConfig, load: LoadgenConfig
) -> List[ShardRequest]:
    """The global request stream, schedule order, ready to route.

    Reuses :func:`~repro.serve.loadgen.open_loop_schedule`, so the
    stream (arrival instants, client round-robin, Zipf data ids) is
    byte-identical to what an unsharded open-loop session with the same
    :class:`LoadgenConfig` would generate.
    """
    if load.loop != LOOP_OPEN:
        raise ConfigurationError(
            "sharded serving routes a precomputed open-loop schedule; "
            f"closed-loop sessions are single-process only (got {load.loop!r})"
        )
    schedule = open_loop_schedule(load, config.num_data)
    return [
        ShardRequest(
            index=index,
            arrival_s=arrival_s,
            client_id=client_id,
            data_id=data_id,
        )
        for index, (arrival_s, client_id, data_id) in enumerate(schedule)
    ]


def _validate_kills(
    config: ShardedServiceConfig, kills: Sequence[ShardKill]
) -> List[ShardKill]:
    victims = [kill.shard_id for kill in kills]
    if len(set(victims)) != len(victims):
        raise ConfigurationError("at most one kill per shard")
    for kill in kills:
        if not 0 <= kill.shard_id < config.num_shards:
            raise ConfigurationError(
                f"kill targets unknown shard {kill.shard_id}; "
                f"deployment has shards 0..{config.num_shards - 1}"
            )
        if kill.time_s < 0:
            raise ConfigurationError(
                f"kill time must be >= 0, got {kill.time_s}"
            )
    if len(victims) >= config.num_shards:
        raise ConfigurationError("cannot kill every shard in the deployment")
    return sorted(kills, key=lambda kill: (kill.time_s, kill.shard_id))


def run_sharded(
    config: ShardedServiceConfig,
    load: LoadgenConfig,
    multiprocess: bool = True,
    kills: Sequence[ShardKill] = (),
    barrier_timeout_s: Optional[float] = None,
) -> ShardedRunResult:
    """Run one sharded serving session end to end (blocking).

    Args:
        config: The deployment.
        load: The open-loop workload.
        multiprocess: Worker processes (True) or the in-process serial
            reference path (False).
        kills: Chaos drill: SIGKILL each victim shard just before the
            first arrival at or past its ``time_s``. Multiprocess only.
        barrier_timeout_s: Optional wall-clock cap on the collection
            barrier (None = wait for liveness to settle naturally).

    Returns:
        The reassembled :class:`ShardedRunResult`.
    """
    if kills and not multiprocess:
        raise ConfigurationError(
            "chaos kills need worker processes; serial runs cannot lose a shard"
        )
    pending_kills = _validate_kills(config, kills)
    routing_table = assign_data(config)
    specs = build_topology(config, routing_table)
    messages = plan_messages(config, load)
    owners = [routing_table[message.data_id] for message in messages]
    # Wall/CPU reads below measure router cost only; routing decisions
    # and outcomes never depend on them.
    started_wall_s = time.perf_counter()  # reprolint: disable=RPL101
    started_cpu_s = time.process_time()  # reprolint: disable=RPL101
    if multiprocess:
        outcomes, results, down, lost = _run_multiprocess(
            config, specs, messages, owners, pending_kills, barrier_timeout_s
        )
    else:
        outcomes, results, down, lost = _run_serial(specs, messages, owners)
    elapsed_wall_s = time.perf_counter() - started_wall_s  # reprolint: disable=RPL101
    elapsed_cpu_s = time.process_time() - started_cpu_s  # reprolint: disable=RPL101
    return ShardedRunResult(
        outcomes=tuple(outcomes),
        shard_results=tuple(results),
        shards_down=tuple(sorted(down)),
        requests_lost=lost,
        router_wall_s=elapsed_wall_s,
        router_cpu_s=elapsed_cpu_s,
        multiprocess=multiprocess,
    )


def _shard_down_outcome(message: ShardRequest) -> Rejected:
    return Rejected(
        client_id=message.client_id,
        data_id=message.data_id,
        reason=RejectReason.SHARD_DOWN,
        rejected_s=message.arrival_s,
    )


def _place_outcomes(
    slots: List[Optional[Outcome]], result: ShardResult
) -> None:
    for position, index in enumerate(result.indices):
        slots[index] = result.outcomes[position]


def _run_serial(
    specs: Sequence[ShardSpec],
    messages: Sequence[ShardRequest],
    owners: Sequence[int],
) -> Tuple[List[Outcome], List[ShardResult], List[int], int]:
    """Reference path: each shard session runs in-process, shard order."""
    per_shard: Dict[int, List[Optional[ShardRequest]]] = {
        spec.shard_id: [] for spec in specs
    }
    for message, owner in zip(messages, owners):
        per_shard[owner].append(message)
    slots: List[Optional[Outcome]] = [None] * len(messages)
    results: List[ShardResult] = []
    for spec in specs:
        result = run_shard_session(spec, per_shard[spec.shard_id])
        results.append(result)
        _place_outcomes(slots, result)
    return _finish(slots, messages), results, [], 0


def _run_multiprocess(
    config: ShardedServiceConfig,
    specs: Sequence[ShardSpec],
    messages: Sequence[ShardRequest],
    owners: Sequence[int],
    pending_kills: List[ShardKill],
    barrier_timeout_s: Optional[float],
) -> Tuple[List[Outcome], List[ShardResult], List[int], int]:
    """One worker process per shard; liveness-aware collection barrier."""
    # fork keeps startup cheap on the platforms CI runs; everything on
    # the queues is picklable, so spawn-only platforms work too.
    methods = multiprocessing.get_all_start_methods()
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else "spawn"
    )
    request_qs = [context.Queue() for _ in specs]
    response_qs = [context.Queue() for _ in specs]
    processes = [
        context.Process(
            target=shard_worker_main,
            args=(spec, request_qs[shard_id], response_qs[shard_id]),
            name=f"shard-{shard_id}",
            daemon=True,
        )
        for shard_id, spec in enumerate(specs)
    ]
    slots: List[Optional[Outcome]] = [None] * len(messages)
    sent: Dict[int, List[ShardRequest]] = {
        shard_id: [] for shard_id in range(len(specs))
    }
    buffers: Dict[int, List[ShardRequest]] = {
        shard_id: [] for shard_id in range(len(specs))
    }
    down: List[int] = []
    lost = 0

    def flush(shard_id: int) -> None:
        if buffers[shard_id]:
            request_qs[shard_id].put(list(buffers[shard_id]))
            buffers[shard_id].clear()

    try:
        for process in processes:
            process.start()
        kill_cursor = 0
        for message, owner in zip(messages, owners):
            while (
                kill_cursor < len(pending_kills)
                and message.arrival_s >= pending_kills[kill_cursor].time_s
            ):
                # Pre-kill arrivals must actually be *sent* before the
                # victim dies, or the drill would shed them spuriously.
                for shard_id in range(len(specs)):
                    if shard_id not in down:
                        flush(shard_id)
                victim = pending_kills[kill_cursor].shard_id
                processes[victim].kill()
                processes[victim].join()
                down.append(victim)
                kill_cursor += 1
            if owner in down:
                slots[message.index] = _shard_down_outcome(message)
                lost += 1
                continue
            sent[owner].append(message)
            buffers[owner].append(message)
            if len(buffers[owner]) >= REQUEST_CHUNK:
                flush(owner)
        for shard_id in range(len(specs)):
            if shard_id not in down:
                flush(shard_id)
                request_qs[shard_id].put(None)
        results, barrier_down = _collect(
            processes, response_qs, down, barrier_timeout_s
        )
        down.extend(barrier_down)
        for result in results:
            _place_outcomes(slots, result)
        # Requests sent to a shard that died before replying are lost:
        # synthesise their shard_down outcomes at the arrival instant.
        for shard_id in sorted(down):
            for message in sent[shard_id]:
                if slots[message.index] is None:
                    slots[message.index] = _shard_down_outcome(message)
                    lost += 1
        return _finish(slots, messages), results, down, lost
    finally:
        for process in processes:
            if process.is_alive():
                process.terminate()
            process.join()
        for request_q in request_qs:
            request_q.close()
            request_q.cancel_join_thread()
        for response_q in response_qs:
            response_q.close()
            response_q.cancel_join_thread()


def _collect(
    processes: Sequence[BaseProcess],
    response_qs: Sequence["MpQueue[object]"],
    already_down: Sequence[int],
    barrier_timeout_s: Optional[float],
) -> Tuple[List[ShardResult], List[int]]:
    """The collection barrier: one reply (or a death) per live shard.

    Polls each shard's response queue with a short timeout and checks
    worker liveness between polls, so a SIGKILLed worker (which never
    replies) is detected instead of awaited forever. A final
    ``get_nowait`` closes the race where the worker replied and *then*
    exited between two polls.
    """
    # Barrier pacing is wall-clock by nature (it guards against real
    # process death); results are unaffected by the poll cadence.
    barrier_start_s = time.monotonic()  # reprolint: disable=RPL101
    results: List[ShardResult] = []
    newly_down: List[int] = []
    for shard_id, process in enumerate(processes):
        if shard_id in already_down:
            continue
        reply: Optional[object] = None
        while reply is None:
            if (
                barrier_timeout_s is not None
                and time.monotonic() - barrier_start_s  # reprolint: disable=RPL101
                > barrier_timeout_s
            ):
                raise SimulationError(
                    f"collection barrier exceeded {barrier_timeout_s} s "
                    f"waiting on shard {shard_id}"
                )
            try:
                reply = response_qs[shard_id].get(timeout=BARRIER_POLL_S)
            except queue.Empty:
                if process.is_alive():
                    continue
                try:
                    reply = response_qs[shard_id].get_nowait()
                except queue.Empty:
                    newly_down.append(shard_id)
                    break
        if reply is None:
            continue
        if isinstance(reply, ShardFailure):
            raise SimulationError(
                f"shard {reply.shard_id} worker failed: {reply.error}"
            )
        if not isinstance(reply, ShardResult):
            raise SimulationError(
                f"shard {shard_id} sent an unexpected reply "
                f"{type(reply).__name__}"
            )
        results.append(reply)
    return results, newly_down


def _finish(
    slots: List[Optional[Outcome]], messages: Sequence[ShardRequest]
) -> List[Outcome]:
    """Assert every schedule slot resolved and drop the Optional."""
    outcomes: List[Outcome] = []
    for index, slot in enumerate(slots):
        if slot is None:
            raise SimulationError(
                f"request {index} (data {messages[index].data_id}) has no "
                "outcome after the collection barrier"
            )
        outcomes.append(slot)
    return outcomes


__all__ = [
    "BARRIER_POLL_S",
    "ShardedRunResult",
    "plan_messages",
    "run_sharded",
]
