"""Fleet partitioning: how N shards split disks, data, and seeds.

A sharded deployment is a pure function of one
:class:`ShardedServiceConfig`:

* **Disks** split contiguously and near-evenly — shard ``k`` of ``N``
  over ``D`` disks owns a ``D//N``-or-one-more slice, so global disk ids
  map back to ``(shard, local disk)`` by arithmetic alone.
* **Data ids** are assigned to shards popularity-aware: the hot head
  of the Zipf popularity distribution (the first ``hot_data_ids``
  ranks) is spread greedily by expected request weight — pure
  consistent hashing would hand whichever shard drew rank 0 an extra
  ~``1/H(num_data)`` of *all* traffic — and the flat tail goes to the
  consistent-hash ring (:class:`~repro.serve.shard.ring.HashRing`).
  The router routes with :func:`assign_data`'s exact output, so
  placement and routing can never disagree.
* **Replicas are shard-local by default** (``shard_replication_factor
  = 1``): each shard builds its placement catalog over *its own* data
  subset and *its own* disks (``ServiceConfig.make_catalog(data_ids)``),
  so every replica of an object lives on exactly one shard. That is
  what makes a shard worker a complete, independently-deterministic
  service — and what makes a dead shard's keyspace unservable (typed
  ``shard_down``) rather than silently degraded.
* **Cross-shard replication** (``shard_replication_factor = R > 1``)
  trades that amputation for availability: every data id is placed on
  ``R`` distinct shards — its primary owner plus ring successors (flat
  tail) or greedy weight-balanced picks (hot head) — and the router
  fails a dead shard's keys over to the next live replica shard in
  :func:`replica_table` order. The R=1 topology is bit-for-bit the
  pre-replication one, so the pinned R=1 determinism digest is
  untouched.
* **Seeds** are decorrelated per shard (``seed + 7919 * (shard+1)``) so
  shard workloads don't mirror each other, while the whole deployment
  stays reproducible from the one top-level seed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.serve.service import POLICIES, POLICY_ONLINE, ServiceConfig
from repro.serve.shard.ring import DEFAULT_VNODES, HashRing
from repro.types import DataId, DiskId

#: Per-shard seed stride (prime, so shard seed sequences never collide
#: with the +7 catalog offset or the *97 loadgen client streams).
SHARD_SEED_STRIDE = 7_919


@dataclass(frozen=True)
class ShardedServiceConfig:
    """One sharded serving deployment (the router-side config).

    Attributes:
        policy: Scheduling policy every shard runs.
        num_shards: Worker process count (>= 1).
        num_disks: Total fleet size, split across shards.
        replication_factor: Copies per data item *within its shard*.
        num_data: Global data population size.
        zipf_exponent: Original-placement skew inside each shard.
        seed: Deployment seed; shard seeds derive from it.
        profile_name: Disk power profile for every shard.
        queue_limit: Per-shard bounded ingress capacity.
        client_rate_per_s: Per-client token refill rate (per shard).
        client_burst: Per-client bucket capacity in tokens.
        window_s: Micro-batch window length in seconds.
        max_batch: Per-window dispatch cap (``None`` = whole queue).
        alpha: Eq. 6 energy weight.
        beta: Eq. 6 energy scale.
        vnodes: Virtual nodes per shard on the routing ring.
        hot_data_ids: Popularity ranks assigned greedily by Zipf weight
            instead of by the ring (0 = pure consistent hashing).
        drain_grace_s: Per-shard drain deadline in seconds.
        shard_replication_factor: Distinct shards holding each data id
            (1 = shard-local replicas only, the pre-replication
            topology; R > 1 enables cross-shard failover).
        disk_deaths: Scripted in-shard disk crash-stops as
            ``(global_disk_id, at_s)`` pairs — the serving-layer
            reading of the :mod:`repro.faults` drill idiom. Each entry
            is mapped onto the owning shard's local disk id at topology
            build.
    """

    policy: str = POLICY_ONLINE
    num_shards: int = 2
    num_disks: int = 18
    replication_factor: int = 3
    num_data: int = 2_000
    zipf_exponent: float = 1.0
    seed: int = 1
    profile_name: str = "paper-evaluation"
    queue_limit: int = 1_024
    client_rate_per_s: Optional[float] = None
    client_burst: float = 8.0
    window_s: float = 0.1
    max_batch: Optional[int] = None
    alpha: float = 0.2
    beta: float = 100.0
    vnodes: int = DEFAULT_VNODES
    hot_data_ids: int = 64
    drain_grace_s: float = 2.0
    shard_replication_factor: int = 1
    disk_deaths: Tuple[Tuple[DiskId, float], ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {POLICIES}"
            )
        if self.num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {self.num_shards}"
            )
        if self.num_data < 1:
            raise ConfigurationError(
                f"num_data must be >= 1, got {self.num_data}"
            )
        if self.hot_data_ids < 0:
            raise ConfigurationError(
                f"hot_data_ids must be >= 0, got {self.hot_data_ids}"
            )
        smallest = self.num_disks // self.num_shards
        if smallest < self.replication_factor:
            raise ConfigurationError(
                f"{self.num_disks} disks over {self.num_shards} shards "
                f"leaves {smallest} disks on the smallest shard, fewer "
                f"than replication_factor={self.replication_factor}; "
                "add disks or drop shards"
            )
        if not 1 <= self.shard_replication_factor <= self.num_shards:
            raise ConfigurationError(
                f"shard_replication_factor must be in [1, num_shards="
                f"{self.num_shards}], got {self.shard_replication_factor}"
            )
        for disk_id, at_s in self.disk_deaths:
            if not 0 <= disk_id < self.num_disks:
                raise ConfigurationError(
                    f"disk death targets unknown disk {disk_id}; "
                    f"fleet has disks 0..{self.num_disks - 1}"
                )
            if at_s < 0:
                raise ConfigurationError(
                    f"disk death time must be >= 0, got {at_s}"
                )

    def ring(self) -> HashRing:
        """The deployment's routing ring (also used at topology build)."""
        return HashRing(self.num_shards, vnodes=self.vnodes, seed=self.seed)

    def shard_seed(self, shard_id: int) -> int:
        """The service seed of shard ``shard_id``."""
        return self.seed + SHARD_SEED_STRIDE * (shard_id + 1)

    def disk_slices(self) -> List[Tuple[DiskId, DiskId]]:
        """Per-shard ``(first_global_disk, past_end)`` contiguous slices."""
        base = self.num_disks // self.num_shards
        extra = self.num_disks % self.num_shards
        slices: List[Tuple[DiskId, DiskId]] = []
        start = 0
        for shard in range(self.num_shards):
            count = base + (1 if shard < extra else 0)
            slices.append((start, start + count))
            start += count
        return slices


@dataclass(frozen=True)
class ShardSpec:
    """Everything one worker process needs — picklable by construction.

    Attributes:
        shard_id: Position in the deployment (0-based).
        service: The shard's own :class:`ServiceConfig` (local disk
            count, derived seed).
        data_ids: Sorted data ids this shard owns (ring assignment).
        global_disk_ids: The global ids of this shard's disks, for
            report readers mapping local disk 0.. back to the fleet.
        drain_grace_s: Drain deadline in seconds for this shard.
    """

    shard_id: int
    service: ServiceConfig
    data_ids: Tuple[DataId, ...]
    global_disk_ids: Tuple[DiskId, ...]
    drain_grace_s: float = 2.0

    def make_catalog(self) -> PlacementCatalog:
        """Placement over this shard's own data ids and disks."""
        return self.service.make_catalog(self.data_ids)


def assign_data(config: ShardedServiceConfig) -> List[int]:
    """Owner shard of every data id — the routing table, by rank.

    Data ids are Zipf popularity ranks (the load generator samples id
    ``r`` with weight ``(r+1)^-s``), so ownership is split in two
    regimes:

    * **hot head** (rank < ``hot_data_ids``): greedy assignment to the
      shard with the smallest accumulated expected weight, rank order,
      lowest shard id on ties. This is what keeps rank 0 — alone worth
      ~``1/H(num_data)`` of all traffic — from skewing one shard's
      load by double digits.
    * **flat tail**: the consistent-hash ring; per-id weights are small
      and near-uniform there, so hash balance is weight balance.

    Both the topology (which shard's catalog holds which ids) and the
    router consume this exact table, so they cannot disagree.
    """
    ring = config.ring()
    owners = [0] * config.num_data
    exponent = config.zipf_exponent
    loads = [0.0] * config.num_shards
    hot = min(config.hot_data_ids, config.num_data)
    for rank in range(hot):
        lightest = min(range(config.num_shards), key=lambda s: (loads[s], s))
        owners[rank] = lightest
        loads[lightest] += (rank + 1) ** -exponent
    for data_id in range(hot, config.num_data):
        owners[data_id] = ring.lookup(data_id)
    return owners


def replica_table(
    config: ShardedServiceConfig,
    routing_table: Optional[Sequence[int]] = None,
) -> List[Tuple[int, ...]]:
    """Replica shards of every data id, failover-priority order.

    Element 0 of each tuple is the primary owner — exactly
    :func:`assign_data`'s answer, so R=1 routing is unchanged. The
    remaining ``shard_replication_factor - 1`` entries are the shards a
    dead primary's traffic fails over to, tried left to right:

    * **flat tail**: the key's ring successors
      (:meth:`~repro.serve.shard.ring.HashRing.successors`) — a pure
      function of the ring, so the failover order is stable across
      processes and across live-set changes (a key never re-targets
      because some *other* shard died).
    * **hot head**: successive greedy picks by accumulated expected
      replica weight — the energy-aware tie-break: rank 0's failover
      copy alone is worth ~``1/H(num_data)`` of all traffic, so pushing
      it onto whichever shard is already lightest keeps a degraded
      deployment's load (and therefore its spun-up disk population)
      balanced.

    The router and the topology consume this exact table, so placement
    and failover can never disagree.
    """
    if routing_table is None:
        routing_table = assign_data(config)
    replicas = config.shard_replication_factor
    if replicas == 1:
        return [(owner,) for owner in routing_table]
    ring = config.ring()
    exponent = config.zipf_exponent
    hot = min(config.hot_data_ids, config.num_data)
    # Start from the primaries' accumulated hot-head weights (the same
    # sums assign_data's greedy built), so replica copies steer away
    # from shards that are already hot with primary traffic.
    loads = [0.0] * config.num_shards
    for rank in range(hot):
        loads[routing_table[rank]] += (rank + 1) ** -exponent
    table: List[Tuple[int, ...]] = []
    for rank in range(hot):
        weight = (rank + 1) ** -exponent
        chosen = [routing_table[rank]]
        while len(chosen) < replicas:
            lightest = min(
                (s for s in range(config.num_shards) if s not in chosen),
                key=lambda s: (loads[s], s),
            )
            chosen.append(lightest)
            loads[lightest] += weight
        table.append(tuple(chosen))
    for data_id in range(hot, config.num_data):
        order = ring.successors(data_id)
        # successors()[0] is assign_data's tail owner by construction.
        table.append(tuple(order[:replicas]))
    return table


def build_topology(
    config: ShardedServiceConfig,
    routing_table: Optional[Sequence[int]] = None,
) -> Tuple[ShardSpec, ...]:
    """Deterministically expand a deployment config into shard specs.

    Every data id in ``range(num_data)`` lands on every shard in its
    :func:`replica_table` row — at the default
    ``shard_replication_factor = 1`` that is exactly its
    :func:`assign_data` owner, so shard data sets are pairwise disjoint
    and their union is the global population (pinned by
    ``tests/serve/test_shard_topology.py``); at R > 1 each id appears
    on R distinct shards. Each shard gets a :class:`ServiceConfig`
    scoped to its disk slice and derived seed, with any scripted
    :attr:`~ShardedServiceConfig.disk_deaths` translated to the owning
    shard's local disk ids.

    Args:
        config: The deployment.
        routing_table: An :func:`assign_data` result to reuse when the
            caller already computed it (the router does); ``None``
            computes it here. Passing anything else desynchronises the
            router from the catalogs — don't.
    """
    if routing_table is None:
        routing_table = assign_data(config)
    replicas = replica_table(config, routing_table)
    owned: Dict[int, List[DataId]] = {
        shard: [] for shard in range(config.num_shards)
    }
    for data_id, holders in enumerate(replicas):
        for shard in holders:
            owned[shard].append(data_id)
    specs: List[ShardSpec] = []
    for shard_id, (start, stop) in enumerate(config.disk_slices()):
        local_deaths = tuple(
            (disk_id - start, at_s)
            for disk_id, at_s in config.disk_deaths
            if start <= disk_id < stop
        )
        service = ServiceConfig(
            policy=config.policy,
            num_disks=stop - start,
            replication_factor=config.replication_factor,
            num_data=config.num_data,
            zipf_exponent=config.zipf_exponent,
            seed=config.shard_seed(shard_id),
            profile_name=config.profile_name,
            queue_limit=config.queue_limit,
            client_rate_per_s=config.client_rate_per_s,
            client_burst=config.client_burst,
            window_s=config.window_s,
            max_batch=config.max_batch,
            alpha=config.alpha,
            beta=config.beta,
            disk_deaths=local_deaths,
        )
        specs.append(
            ShardSpec(
                shard_id=shard_id,
                service=service,
                data_ids=tuple(owned[shard_id]),
                global_disk_ids=tuple(range(start, stop)),
                drain_grace_s=config.drain_grace_s,
            )
        )
    return tuple(specs)


__all__ = [
    "SHARD_SEED_STRIDE",
    "ShardSpec",
    "ShardedServiceConfig",
    "assign_data",
    "build_topology",
    "replica_table",
]
