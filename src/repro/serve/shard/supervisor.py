"""Supervised shard workers: spawn, observe, kill, restart, replay.

:class:`ShardSupervisor` owns every process-level concern the sharded
router used to handle inline — worker lifecycles, request/response
queues, the router-side outbox — plus the three abilities PR 8 adds:

* **Hang detection, not just death detection.** The collection barrier
  polls worker liveness *and* a per-shard response timeout fed by
  :class:`~repro.serve.shard.messages.ShardProgress` heartbeats, so a
  worker that is alive but silent (SIGSTOP, a wedged syscall) is
  escalated instead of awaited until the heat death of CI.
* **Restart from the derived seed.** A restarted shard is a fresh
  process built from the *same* :class:`ShardSpec` — same derived seed,
  same topology slice — fed the full outbox replay. Its virtual session
  re-runs from zero and reproduces the dead incarnation's outcomes
  exactly (the determinism tier's argument, now doing recovery work),
  which is why first-wins dedup of duplicate results is safe.
* **Bounded-retry rejoin.** Process spawn is retried with exponential
  backoff up to a configured attempt budget; every completed recovery
  is summarised in a typed :class:`RecoveryReport`.

Wall-clock readings here (downtime, backoff pacing, response timeouts)
are measurement and *pacing* only: which requests a restarted shard
replays is fixed by the schedule-scripted
:attr:`~repro.serve.shard.messages.ShardKill.recover_at_s`, so outcomes
never depend on how long a restart actually took.
"""

from __future__ import annotations

import os
import queue
import signal
import time
from dataclasses import dataclass
from multiprocessing.context import BaseContext
from multiprocessing.process import BaseProcess
from multiprocessing.queues import Queue as MpQueue
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError, SimulationError
from repro.serve.shard.messages import (
    ShardFailure,
    ShardProgress,
    ShardRequest,
    ShardResult,
)
from repro.serve.shard.topology import ShardSpec
from repro.serve.shard.worker import shard_worker_main

#: Collection-barrier liveness poll interval (wall seconds).
BARRIER_POLL_S = 0.2

#: Requests per queue put. Chunking amortises pickle + pipe overhead
#: (one serialisation per chunk, not per request); the worker flattens
#: chunks back into the identical ordered stream, and every chunk
#: boundary is forced flush-before-kill, so chaos timing is unaffected.
REQUEST_CHUNK = 256


@dataclass(frozen=True)
class SupervisorConfig:
    """Recovery policy knobs (all wall-clock pacing, never outcomes).

    Attributes:
        supervise: Restart dead or escalated workers whose outbox still
            holds unanswered requests (instead of shedding their
            keyspace at the barrier).
        response_timeout_s: Barrier-side hang detector: seconds of
            *silence* (no heartbeat, no result) from a live worker
            before it is escalated to SIGKILL. ``None`` disables the
            detector — a hung worker then stalls the barrier, which is
            exactly the pre-supervision behaviour.
        max_spawn_attempts: Restart attempt budget per recovery.
        spawn_backoff_s: Base backoff between restart attempts; attempt
            ``k`` waits ``spawn_backoff_s * 2**(k-1)``.
    """

    supervise: bool = False
    response_timeout_s: Optional[float] = None
    max_spawn_attempts: int = 3
    spawn_backoff_s: float = 0.05

    def __post_init__(self) -> None:
        if self.response_timeout_s is not None and self.response_timeout_s <= 0:
            raise ConfigurationError(
                f"response_timeout_s must be positive, got "
                f"{self.response_timeout_s}"
            )
        if self.max_spawn_attempts < 1:
            raise ConfigurationError(
                f"max_spawn_attempts must be >= 1, got "
                f"{self.max_spawn_attempts}"
            )
        if self.spawn_backoff_s < 0:
            raise ConfigurationError(
                f"spawn_backoff_s must be >= 0, got {self.spawn_backoff_s}"
            )


@dataclass(frozen=True)
class RecoveryReport:
    """One completed worker recovery, summarised for the merged report.

    Attributes:
        shard_id: The recovered shard.
        reason: What took the previous incarnation down — ``"killed"``
            (scripted SIGKILL) or ``"hung"`` (escalated after the
            response timeout).
        spawn_attempts: Process-spawn attempts the restart consumed
            (1 = first try succeeded).
        requests_replayed: Outbox messages re-sent to the fresh
            incarnation.
        requests_failed_over: Requests re-routed to replica shards
            while this shard was down (0 unless cross-shard replication
            is on).
        duplicates_suppressed: Duplicate per-request outcomes discarded
            by the router's first-wins request-id dedup for this
            shard's results.
        downtime_wall_s: Wall seconds from death to successful rejoin.
            Measurement only — never serialised into report documents,
            which must stay byte-deterministic.
    """

    shard_id: int
    reason: str
    spawn_attempts: int
    requests_replayed: int
    requests_failed_over: int
    duplicates_suppressed: int
    downtime_wall_s: float


class _Incident:
    """Mutable recovery-in-progress bookkeeping (frozen at finalise)."""

    __slots__ = (
        "shard_id",
        "reason",
        "spawn_attempts",
        "requests_replayed",
        "requests_failed_over",
        "down_since_wall_s",
        "downtime_wall_s",
    )

    def __init__(self, shard_id: int, reason: str, down_since_wall_s: float):
        self.shard_id = shard_id
        self.reason = reason
        self.spawn_attempts = 0
        self.requests_replayed = 0
        self.requests_failed_over = 0
        self.down_since_wall_s = down_since_wall_s
        self.downtime_wall_s = 0.0


class ShardSupervisor:
    """Owns worker processes, queues, outboxes, and recovery.

    The router drives it in strict schedule order: enqueue/flush during
    routing, scripted ``kill``/``hang``/``restart`` at their schedule
    instants, then one :meth:`collect` barrier. Single-use, like the
    deployment it runs.

    Args:
        context: Multiprocessing context (fork on the platforms CI
            runs; everything queued is picklable so spawn works too).
        specs: One :class:`ShardSpec` per shard, shard-id order.
        config: Recovery policy.
    """

    def __init__(
        self,
        context: BaseContext,
        specs: Sequence[ShardSpec],
        config: SupervisorConfig,
    ):
        self._context = context
        self._specs = tuple(specs)
        self._config = config
        shard_ids = range(len(self._specs))
        self._request_qs: Dict[int, "MpQueue[object]"] = {}
        self._response_qs: Dict[int, "MpQueue[object]"] = {}
        self._processes: Dict[int, BaseProcess] = {}
        self._retired_processes: List[BaseProcess] = []
        self._retired_queues: List["MpQueue[object]"] = []
        self._outbox: Dict[int, List[ShardRequest]] = {
            shard: [] for shard in shard_ids
        }
        self._pending: Dict[int, List[ShardRequest]] = {
            shard: [] for shard in shard_ids
        }
        self._live: Set[int] = set()
        self._stream_closed = False
        self._incidents: Dict[int, _Incident] = {}  # open (unrecovered)
        self._recovered: List[_Incident] = []
        self._duplicates_by_shard: Dict[int, int] = {}
        self._requests_replayed = 0

    # -- lifecycle ------------------------------------------------------

    def start(self) -> None:
        """Spawn one worker per shard."""
        if self._processes:
            raise SimulationError("supervisor already started")
        for shard_id in range(len(self._specs)):
            self._spawn(shard_id)
            self._live.add(shard_id)

    def _spawn(self, shard_id: int) -> None:
        request_q: "MpQueue[object]" = self._context.Queue()
        response_q: "MpQueue[object]" = self._context.Queue()
        process = self._context.Process(
            target=shard_worker_main,
            args=(self._specs[shard_id], request_q, response_q),
            name=f"shard-{shard_id}",
            daemon=True,
        )
        process.start()
        self._request_qs[shard_id] = request_q
        self._response_qs[shard_id] = response_q
        self._processes[shard_id] = process

    @property
    def live_shards(self) -> Tuple[int, ...]:
        """Shards currently up (a SIGSTOPped worker still counts)."""
        return tuple(sorted(self._live))

    def is_live(self, shard_id: int) -> bool:
        """Whether ``shard_id`` is currently in the live set."""
        return shard_id in self._live

    @property
    def down_shards(self) -> Tuple[int, ...]:
        """Shards currently down, ascending."""
        return tuple(
            shard
            for shard in range(len(self._specs))
            if shard not in self._live
        )

    # -- request flow ---------------------------------------------------

    def enqueue(self, shard_id: int, message: ShardRequest) -> None:
        """Append one routed request to the shard's outbox (and wire).

        Live shards get the message on their request queue (chunked);
        for a down shard awaiting restart the message parks in the
        outbox only, to be delivered by the replay.
        """
        self._outbox[shard_id].append(message)
        if shard_id in self._live:
            pending = self._pending[shard_id]
            pending.append(message)
            if len(pending) >= REQUEST_CHUNK:
                self.flush(shard_id)

    def flush(self, shard_id: int) -> None:
        """Push the shard's buffered chunk onto its queue, if any."""
        pending = self._pending[shard_id]
        if pending and shard_id in self._live:
            self._request_qs[shard_id].put(list(pending))
            pending.clear()

    def flush_all(self) -> None:
        """Flush every live shard's staged messages (chunked sends)."""
        for shard_id in self._live:
            self.flush(shard_id)

    def close_streams(self) -> None:
        """Flush every live shard and send its end-of-stream sentinel."""
        for shard_id in sorted(self._live):
            self.flush(shard_id)
            self._request_qs[shard_id].put(None)
        self._stream_closed = True

    def outbox(self, shard_id: int) -> Tuple[ShardRequest, ...]:
        """Everything ever routed to ``shard_id`` (replay source)."""
        return tuple(self._outbox[shard_id])

    def drop_outbox(self, shard_id: int) -> None:
        """Forget a dead shard's outbox after its keys failed over."""
        self._outbox[shard_id].clear()
        self._pending[shard_id].clear()

    def note_failover(self, shard_id: int) -> None:
        """Count one request failed over away from down ``shard_id``."""
        incident = self._incidents.get(shard_id)
        if incident is not None:
            incident.requests_failed_over += 1

    # -- chaos actions --------------------------------------------------

    def kill(self, shard_id: int, reason: str = "killed") -> None:
        """SIGKILL the shard's worker now and mark it down."""
        if shard_id not in self._live:
            raise SimulationError(f"shard {shard_id} is already down")
        process = self._processes[shard_id]
        process.kill()  # SIGKILL: also fells SIGSTOPped workers
        process.join()
        self._live.discard(shard_id)
        self._pending[shard_id].clear()  # unsent tail replays from outbox
        incident = _Incident(
            shard_id,
            reason,
            time.monotonic(),  # reprolint: disable=RPL101 -- downtime measurement only
        )
        self._incidents[shard_id] = incident

    def hang(self, shard_id: int) -> None:
        """SIGSTOP the shard's worker: alive, silent, consuming nothing."""
        if shard_id not in self._live:
            raise SimulationError(f"cannot hang shard {shard_id}: down")
        pid = self._processes[shard_id].pid
        assert pid is not None  # started processes always have a pid
        os.kill(pid, signal.SIGSTOP)

    def restart(self, shard_id: int) -> None:
        """Respawn a down shard and replay its outbox (bounded retries).

        The fresh process runs the same :class:`ShardSpec` — derived
        seed, topology slice — so replaying the outbox reproduces the
        dead incarnation's session exactly. If the global request
        stream already closed, the replay ends with the sentinel so the
        new worker can finish; otherwise the router keeps streaming to
        it like any live shard.
        """
        if shard_id in self._live:
            raise SimulationError(f"shard {shard_id} is already live")
        incident = self._incidents.pop(shard_id, None)
        if incident is None:
            incident = _Incident(
                shard_id,
                "killed",
                time.monotonic(),  # reprolint: disable=RPL101 -- measurement only
            )
        self._retired_processes.append(self._processes[shard_id])
        self._retired_queues.append(self._request_qs[shard_id])
        self._retired_queues.append(self._response_qs[shard_id])
        config = self._config
        attempt = 0
        while True:
            attempt += 1
            try:
                self._spawn(shard_id)
                break
            except OSError as error:
                if attempt >= config.max_spawn_attempts:
                    raise SimulationError(
                        f"shard {shard_id} failed to respawn after "
                        f"{attempt} attempts: {error!r}"
                    )
                # Exponential backoff between spawn attempts: pure wall
                # pacing, invisible to outcomes.
                time.sleep(  # reprolint: disable=RPL101
                    config.spawn_backoff_s * 2 ** (attempt - 1)
                )
        replay = self._outbox[shard_id]
        for start in range(0, len(replay), REQUEST_CHUNK):
            self._request_qs[shard_id].put(
                list(replay[start:start + REQUEST_CHUNK])
            )
        if self._stream_closed:
            self._request_qs[shard_id].put(None)
        self._live.add(shard_id)
        incident.spawn_attempts = attempt
        incident.requests_replayed = len(replay)
        incident.downtime_wall_s = (
            time.monotonic()  # reprolint: disable=RPL101 -- measurement only
            - incident.down_since_wall_s
        )
        self._requests_replayed += len(replay)
        self._recovered.append(incident)

    # -- collection barrier ---------------------------------------------

    def collect(
        self, barrier_timeout_s: Optional[float]
    ) -> Tuple[List[ShardResult], List[int]]:
        """One reply (or an unrecovered death) per live shard.

        Polls each shard's response queue with a short timeout,
        checking three things between polls:

        * **liveness** — a worker that died without replying is either
          restarted (supervising, outbox unanswered) or marked down;
        * **silence** — a worker alive but heartbeat-silent past
          ``response_timeout_s`` is escalated: SIGKILLed, then
          restarted or marked down by the same rule;
        * **the global barrier budget** — ``barrier_timeout_s`` caps
          the whole collection as before.

        A final ``get_nowait`` drain closes the race where a worker
        replied and *then* exited between two polls.
        """
        # Supervision's barrier-entry sweep: a shard that was *already*
        # down when routing ended (a terminal scripted kill, say) still
        # holds unanswered requests in its outbox — restart it now so
        # the replay can answer them before the barrier waits on it.
        if self._config.supervise:
            for shard_id in self.down_shards:
                if self._outbox[shard_id]:
                    self.restart(shard_id)
        # Barrier pacing is wall-clock by nature (it guards against real
        # process death); results are unaffected by the poll cadence.
        barrier_start_s = time.monotonic()  # reprolint: disable=RPL101
        results: List[ShardResult] = []
        newly_down: List[int] = []
        for shard_id in sorted(self._live):
            reply = self._await_shard(
                shard_id, barrier_start_s, barrier_timeout_s
            )
            if reply is None:
                self._live.discard(shard_id)
                newly_down.append(shard_id)
                continue
            results.append(reply)
        return results, newly_down

    def _await_shard(
        self,
        shard_id: int,
        barrier_start_s: float,
        barrier_timeout_s: Optional[float],
    ) -> Optional[ShardResult]:
        """Wait for one shard's result; None = down for good."""
        config = self._config
        last_activity_s = time.monotonic()  # reprolint: disable=RPL101
        restarted_here = False
        while True:
            if (
                barrier_timeout_s is not None
                and time.monotonic() - barrier_start_s  # reprolint: disable=RPL101
                > barrier_timeout_s
            ):
                raise SimulationError(
                    f"collection barrier exceeded {barrier_timeout_s} s "
                    f"waiting on shard {shard_id}"
                )
            try:
                reply = self._response_qs[shard_id].get(
                    timeout=BARRIER_POLL_S
                )
            except queue.Empty:
                now_s = time.monotonic()  # reprolint: disable=RPL101
                process = self._processes[shard_id]
                hung = (
                    config.response_timeout_s is not None
                    and now_s - last_activity_s > config.response_timeout_s
                )
                if hung and process.is_alive():
                    # Alive but silent past the deadline: escalate.
                    if self._try_recover(shard_id, "hung", restarted_here):
                        restarted_here = True
                        last_activity_s = time.monotonic()  # reprolint: disable=RPL101
                        continue
                    return None
                if process.is_alive():
                    continue
                # Dead between polls: drain the race window, then decide.
                drained = self._drain_nowait(shard_id)
                if drained is not None:
                    return drained
                if self._try_recover(shard_id, "killed", restarted_here):
                    restarted_here = True
                    last_activity_s = time.monotonic()  # reprolint: disable=RPL101
                    continue
                return None
            if isinstance(reply, ShardProgress):
                last_activity_s = time.monotonic()  # reprolint: disable=RPL101
                continue
            return self._accept(shard_id, reply)

    def _drain_nowait(self, shard_id: int) -> Optional[ShardResult]:
        """Non-blocking drain of a shard's queue, skipping heartbeats."""
        while True:
            try:
                reply = self._response_qs[shard_id].get_nowait()
            except queue.Empty:
                return None
            if isinstance(reply, ShardProgress):
                continue
            return self._accept(shard_id, reply)

    def _try_recover(
        self, shard_id: int, reason: str, already_restarted: bool
    ) -> bool:
        """Escalate a dead/hung worker at the barrier; True = retry wait.

        SIGKILLs the incarnation (harmless if already dead), then
        restarts-and-replays when supervising and the shard's outbox
        still holds unanswered requests. One recovery per shard per
        barrier: a worker that dies *again* after its barrier restart
        stays down (the restart budget is the routing-time script's
        job, not the barrier's).
        """
        if shard_id in self._live:
            process = self._processes[shard_id]
            process.kill()
            process.join()
            self._live.discard(shard_id)
            self._pending[shard_id].clear()
            self._incidents[shard_id] = _Incident(
                shard_id,
                reason,
                time.monotonic(),  # reprolint: disable=RPL101 -- measurement only
            )
        if (
            already_restarted
            or not self._config.supervise
            or not self._outbox[shard_id]
        ):
            return False
        self.restart(shard_id)
        return True

    def _accept(self, shard_id: int, reply: object) -> ShardResult:
        if isinstance(reply, ShardFailure):
            raise SimulationError(
                f"shard {reply.shard_id} worker failed: {reply.error}"
            )
        if not isinstance(reply, ShardResult):
            raise SimulationError(
                f"shard {shard_id} sent an unexpected reply "
                f"{type(reply).__name__}"
            )
        return reply

    # -- accounting -----------------------------------------------------

    @property
    def requests_replayed(self) -> int:
        """Outbox messages re-sent across every restart."""
        return self._requests_replayed

    def note_duplicates(self, shard_id: int, count: int) -> None:
        """Record dedup-suppressed outcomes from a shard's results."""
        if count:
            self._duplicates_by_shard[shard_id] = (
                self._duplicates_by_shard.get(shard_id, 0) + count
            )

    def recovery_reports(self) -> Tuple[RecoveryReport, ...]:
        """Freeze every completed recovery, oldest first."""
        return tuple(
            RecoveryReport(
                shard_id=incident.shard_id,
                reason=incident.reason,
                spawn_attempts=incident.spawn_attempts,
                requests_replayed=incident.requests_replayed,
                requests_failed_over=incident.requests_failed_over,
                duplicates_suppressed=self._duplicates_by_shard.get(
                    incident.shard_id, 0
                ),
                downtime_wall_s=incident.downtime_wall_s,
            )
            for incident in self._recovered
        )

    # -- teardown -------------------------------------------------------

    def shutdown(self) -> None:
        """Kill every incarnation ever spawned and close every queue.

        ``kill`` (SIGKILL), not ``terminate`` (SIGTERM): a SIGSTOPped
        worker leaves SIGTERM pending forever, but SIGKILL fells
        stopped processes too.
        """
        processes = list(self._processes.values()) + self._retired_processes
        for process in processes:
            if process.is_alive():
                process.kill()
            process.join()
        queues = (
            list(self._request_qs.values())
            + list(self._response_qs.values())
            + self._retired_queues
        )
        for q in queues:
            q.close()
            q.cancel_join_thread()


__all__ = [
    "BARRIER_POLL_S",
    "REQUEST_CHUNK",
    "RecoveryReport",
    "ShardSupervisor",
    "SupervisorConfig",
]
