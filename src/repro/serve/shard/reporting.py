"""Per-shard and merged ``repro-bench/1`` documents for sharded runs.

Both document shapes here are **fully deterministic**: wall-clock
readings (worker compute time, router overhead) deliberately stay out
of the documents and live on :class:`~repro.serve.shard.router.\
ShardedRunResult` instead, so the merged report digest can be pinned in
the determinism tier and compared byte-for-byte between the serial and
multiprocess execution paths. ``wall_clock_s`` records elapsed
*virtual* seconds, exactly like the unsharded serve report.
"""

from __future__ import annotations

import hashlib
import json
from typing import TYPE_CHECKING, Any, Dict, List

from repro.experiments.harness.schema import BENCH_SCHEMA
from repro.serve.admission import Completed, Rejected, RejectReason
from repro.serve.loadgen import LoadgenConfig, LoadResult, tally_outcomes
from repro.serve.service import SchedulingService
from repro.serve.shard.topology import ShardSpec, ShardedServiceConfig
from repro.sim.metrics import MetricsRegistry, merge_dumps

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (router imports us)
    from repro.serve.shard.router import ShardedRunResult


def canonical_json(document: Dict[str, Any]) -> str:
    """The byte-stable serialisation every digest in this PR pins."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def document_digest(document: Dict[str, Any]) -> str:
    """SHA-256 of the canonical serialisation."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def shard_document(
    spec: ShardSpec, service: SchedulingService, result: LoadResult
) -> Dict[str, Any]:
    """One shard's own schema-valid report (virtual-clock fields only).

    Call after the shard drained, while its loop-bound clock is live.
    This is the document the determinism tier compares against an
    unsharded run over the same sub-fleet — hence no wall readings and
    ``created_unix = 0.0``.
    """
    config = spec.service
    backend = service.backend
    elapsed_s = service.clock.now
    snapshot = service.metrics_snapshot()
    events = backend.events_processed
    return {
        "schema": BENCH_SCHEMA,
        "bench": f"serve-shard:{config.policy}:s{spec.shard_id:02d}",
        "created_unix": 0.0,
        "scale": float(max(result.offered, 1)),
        "mwis_scale": 1.0,
        "seed": config.seed,
        "jobs": 1,
        "wall_clock_s": elapsed_s,
        "events_processed": events,
        "events_per_sec": events / elapsed_s if elapsed_s > 0 else 0.0,
        "peak_rss_bytes": None,
        "cache": {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "hit_rate": 0.0,
        },
        "points": [],
        "result": {
            "shard": {
                "shard_id": spec.shard_id,
                "num_shards_hint": None,
                "data_ids_owned": len(spec.data_ids),
                "global_disk_ids": list(spec.global_disk_ids),
            },
            "service": {
                "policy": config.policy,
                "num_disks": config.num_disks,
                "replication_factor": config.replication_factor,
                "num_data": config.num_data,
                "queue_limit": config.queue_limit,
                "client_rate_per_s": config.client_rate_per_s,
                "window_s": config.window_s,
                "max_batch": config.max_batch,
                "virtual_clock": True,
            },
            "outcome": {
                "offered": result.offered,
                "completed": result.completed,
                "rejected": result.rejected,
                "rejected_by_reason": dict(result.rejected_by_reason),
                "completed_fraction": result.completed_fraction,
            },
            "metrics": snapshot,
        },
    }


def sharded_document(
    config: ShardedServiceConfig,
    load: LoadgenConfig,
    run: "ShardedRunResult",
) -> Dict[str, Any]:
    """The merged deployment report: one schema-valid document.

    Folds every shard's full-fidelity registry dump into one merged
    :class:`~repro.sim.metrics.MetricsRegistry` (counters summed, raw
    histogram samples re-observed, ``time.now_s`` maxed) and layers the
    router's own view on top: global outcome tally, per-shard summaries
    with their report digests, and the chaos record of shards lost
    mid-run. Wall-clock scaling numbers are *not* here — see the module
    docstring.

    Replication and recovery blocks appear only in the modes that
    produce them (``shard_replication_factor > 1``; any restart,
    failover or replay happened), so the replication-factor-1 document
    — and its pinned digest — is byte-identical to earlier releases.
    Everything in those blocks is a deterministic function of the
    topology and the chaos script; wall-clock recovery measurements
    (downtime, spawn attempts) stay on :class:`RecoveryReport`.
    """
    tally = tally_outcomes(run.outcomes)
    merged = merge_dumps([r.registry_dump for r in run.shard_results])
    _fold_router_counters(merged, run)
    deployment: Dict[str, Any] = {
        "policy": config.policy,
        "num_shards": config.num_shards,
        "num_disks": config.num_disks,
        "replication_factor": config.replication_factor,
        "num_data": config.num_data,
        "vnodes": config.vnodes,
        "virtual_clock": True,
    }
    if config.shard_replication_factor > 1:
        deployment["shard_replication_factor"] = (
            config.shard_replication_factor
        )
    extra: Dict[str, Any] = {}
    if run.recoveries or run.failed_over_indices or run.requests_replayed:
        extra["recovery"] = {
            "restarts": len(run.recoveries),
            "recovered_shards": sorted(
                {report.shard_id for report in run.recoveries}
            ),
            "requests_replayed": run.requests_replayed,
            "requests_failed_over": len(run.failed_over_indices),
        }
    elapsed_s = max(
        (r.virtual_elapsed_s for r in run.shard_results), default=0.0
    )
    events = sum(r.events_processed for r in run.shard_results)
    shards: List[Dict[str, Any]] = []
    for result in run.shard_results:  # shard_results is in shard-id order
        shards.append(
            {
                "shard_id": result.shard_id,
                "offered": len(result.indices),
                "completed": sum(
                    1 for o in result.outcomes if o.accepted
                ),
                "events_processed": result.events_processed,
                "virtual_elapsed_s": result.virtual_elapsed_s,
                "document_sha256": document_digest(result.document),
            }
        )
    return {
        "schema": BENCH_SCHEMA,
        "bench": f"serve-sharded:{config.policy}",
        "created_unix": 0.0,
        "scale": float(load.num_requests),
        "mwis_scale": 1.0,
        "seed": config.seed,
        "jobs": config.num_shards,
        "wall_clock_s": elapsed_s,
        "events_processed": events,
        "events_per_sec": events / elapsed_s if elapsed_s > 0 else 0.0,
        "peak_rss_bytes": None,
        "cache": {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "hit_rate": 0.0,
        },
        "points": [],
        "result": {
            "deployment": deployment,
            "load": {
                "num_requests": load.num_requests,
                "rate_per_s": load.rate_per_s,
                "num_clients": load.num_clients,
                "arrival": load.arrival,
                "loop": load.loop,
                "seed": load.seed,
            },
            "outcome": {
                "offered": tally.offered,
                "completed": tally.completed,
                "rejected": tally.rejected,
                "rejected_by_reason": dict(tally.rejected_by_reason),
                "completed_fraction": tally.completed_fraction,
            },
            "chaos": {
                "shards_down": list(run.shards_down),
                "requests_lost": run.requests_lost,
            },
            "shards": shards,
            "metrics": merged.snapshot(),
            **extra,
        },
    }


def _fold_router_counters(
    registry: MetricsRegistry, run: "ShardedRunResult"
) -> None:
    """Layer the router's own counters onto the merged registry.

    Shed-at-router requests (dead shard's keyspace, or a replica chain
    that died whole) never reached a worker, so they exist only here;
    folding them in keeps the merged ``requests.*`` counters consistent
    with the global outcome tally.

    Every metric added here is a deterministic function of the chaos
    script, so pinned digests stay valid — which is also why the
    race-dependent dedup count (``duplicates_suppressed``) is *never*
    folded: it lives on :class:`ShardedRunResult` only. New-mode
    metrics (failover, replay) appear only when nonzero, keeping the
    replication-factor-1 document byte-identical to earlier releases.
    """
    shed = run.requests_lost
    shard_down = sum(
        1
        for outcome in run.outcomes
        if isinstance(outcome, Rejected)
        and outcome.reason is RejectReason.SHARD_DOWN
    )
    if shed:
        registry.counter("requests.offered").inc(shed)
        registry.counter("requests.rejected").inc(shed)
        if shard_down:
            registry.counter("rejected.shard_down").inc(shard_down)
        if shed - shard_down:
            registry.counter("rejected.failed_over").inc(shed - shard_down)
    registry.counter("router.requests_routed").inc(len(run.outcomes) - shed)
    registry.counter("router.requests_shed").inc(shed)
    if run.failed_over_indices:
        registry.counter("router.requests_failed_over").inc(
            len(run.failed_over_indices)
        )
        survived = (run.outcomes[index] for index in run.failed_over_indices)
        registry.histogram("failover.latency_s").observe_many(
            outcome.response_time_s
            for outcome in survived
            if isinstance(outcome, Completed)
        )
    if run.requests_replayed:
        registry.counter("router.requests_replayed").inc(
            run.requests_replayed
        )
    if run.recoveries:
        registry.counter("recovery.restarts").inc(len(run.recoveries))


__all__ = [
    "canonical_json",
    "document_digest",
    "shard_document",
    "sharded_document",
]
