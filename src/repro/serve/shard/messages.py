"""Picklable wire types crossing the router/worker process boundary.

Everything here is a frozen dataclass of plain values — the same
serialisation discipline the PR 2 ``SweepRunner`` established: if it
can't pickle under the ``spawn`` start method, it doesn't go on a
queue. Outcomes (:class:`~repro.serve.admission.Completed` /
``Rejected``) already satisfy this, so shard results carry them
verbatim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.serve.admission import Outcome
from repro.types import DEFAULT_REQUEST_BYTES, DataId


@dataclass(frozen=True)
class ShardRequest:
    """One routed request, as the owning shard worker receives it.

    Attributes:
        index: Global position in the load schedule — the router
            reassembles outcomes into schedule order by this.
        arrival_s: Virtual-clock arrival instant in seconds. Workers
            sleep their *own* virtual clock to this instant, so a
            shard's timeline is identical whether the stream arrived
            over a queue or from an in-process generator.
        client_id: Submitting client identity.
        data_id: Requested data item (owned by this shard).
        size_bytes: Request payload size.
    """

    index: int
    arrival_s: float
    client_id: str
    data_id: DataId
    size_bytes: int = DEFAULT_REQUEST_BYTES


@dataclass(frozen=True)
class ShardResult:
    """A shard worker's complete session output.

    Attributes:
        shard_id: Which shard produced this.
        indices: Global schedule indices of ``outcomes``, in the order
            the shard received them.
        outcomes: Per-request outcomes, received order.
        registry_dump: Full-fidelity ``MetricsRegistry.dump()`` (raw
            histogram samples), for exact cross-shard merging.
        document: The shard's own schema-valid ``repro-bench/1`` report.
        virtual_elapsed_s: The shard's virtual clock at session end.
        compute_cpu_s: CPU seconds the worker spent inside the session
            (``time.process_time``). CPU — not wall — because a worker
            blocked on its request queue burns no CPU, so per-shard
            compute shrinks with the shard count even when all workers
            time-slice one core; this is what the ``serve_scale``
            critical-path rate is built from.
        events_processed: Engine events the shard's backend processed.
    """

    shard_id: int
    indices: Tuple[int, ...]
    outcomes: Tuple[Outcome, ...]
    registry_dump: Dict[str, Dict[str, object]]
    document: Dict[str, object]
    virtual_elapsed_s: float
    compute_cpu_s: float
    events_processed: int


@dataclass(frozen=True)
class ShardFailure:
    """A worker died with an exception (sent best-effort before re-raise).

    Attributes:
        shard_id: Which shard failed.
        error: ``repr`` of the exception (tracebacks don't pickle).
    """

    shard_id: int
    error: str


@dataclass(frozen=True)
class ShardKill:
    """A chaos instruction: SIGKILL one worker mid-traffic.

    Mirrors the :mod:`repro.faults` drill idiom — the failure is part of
    the scripted scenario, so the run (which requests are shed, which
    complete) is as reproducible as a healthy one.

    Attributes:
        shard_id: Victim shard.
        time_s: Schedule instant: the kill fires just before the first
            request whose ``arrival_s`` is at or past this.
        recover_at_s: Optional schedule instant at which the supervisor
            restarts the victim (fresh process from the same derived
            seed and topology slice) and replays its outbox. ``None``
            leaves the shard down for the rest of the run. Recovery is
            schedule-scripted for the same reason the kill is: the set
            of requests the restarted shard replays depends only on the
            schedule, never on wall-clock restart latency.
    """

    shard_id: int
    time_s: float
    recover_at_s: Optional[float] = None


@dataclass(frozen=True)
class ShardHang:
    """A chaos instruction: SIGSTOP one worker mid-traffic.

    The nastier cousin of :class:`ShardKill`: the victim stays *alive*
    (liveness polls keep passing) but consumes and answers nothing.
    Detecting this takes the collection barrier's per-shard response
    timeout — silence, not death — after which the supervisor escalates
    to SIGKILL (and, when supervising, restart-and-replay).

    Attributes:
        shard_id: Victim shard.
        time_s: Schedule instant: the stop fires just before the first
            request whose ``arrival_s`` is at or past this.
    """

    shard_id: int
    time_s: float


@dataclass(frozen=True)
class ShardProgress:
    """Worker → router heartbeat: one per request chunk consumed.

    Carries no outcome data — it exists so the collection barrier can
    tell a *slow* worker (progress messages still flowing) from a
    *hung* one (silence past the response timeout). Emitted before the
    chunk is processed, so a worker wedged mid-chunk still reported the
    receipt.

    Attributes:
        shard_id: The reporting shard.
        chunks_consumed: Monotonic count of chunks taken off the
            request queue so far.
    """

    shard_id: int
    chunks_consumed: int


__all__ = [
    "ShardFailure",
    "ShardHang",
    "ShardKill",
    "ShardProgress",
    "ShardRequest",
    "ShardResult",
]
