"""Consistent-hash ring for the sharded serving router.

Classic Karger-style ring: every shard owns ``vnodes`` points on a
64-bit circle, and a key is owned by the first shard point at or after
the key's own hash (wrapping). Two properties matter here and both are
tested (``tests/serve/test_ring_properties.py``):

* **Process stability.** Points come from :func:`hashlib.blake2b`, never
  from Python's randomized ``hash()``, so the router process and every
  shard worker agree on ownership without sharing state — a fixed
  ``(num_shards, vnodes, seed)`` triple fully determines the ring.
* **Minimal remapping.** When a shard is removed from the live set, only
  the keys it owned move (to their clockwise successors); everyone
  else's keys stay put. That is what lets the chaos drill shed exactly
  one shard's keyspace.
"""

from __future__ import annotations

import bisect
import hashlib
from typing import List, Optional, Sequence, Set, Tuple

from repro.errors import ConfigurationError

#: Default virtual nodes per shard. 256 points per shard keeps the
#: keyspace-count spread to a few percent at 8 shards (spread shrinks
#: like ``1/sqrt(vnodes)``) while the ring stays small (2048 points at
#: 8 shards) and a lookup stays one bisect.
DEFAULT_VNODES = 256

_POINT_BYTES = 8  # 64-bit circle


def _hash_point(label: str) -> int:
    """A stable 64-bit point for ``label`` (blake2b, not ``hash()``)."""
    digest = hashlib.blake2b(label.encode("utf-8"), digest_size=_POINT_BYTES)
    return int.from_bytes(digest.digest(), "big")


class HashRing:
    """Consistent-hash ring over shard ids ``0..num_shards-1``.

    Args:
        num_shards: Number of shards on the ring (>= 1).
        vnodes: Virtual nodes per shard (>= 1).
        seed: Namespaces the point hashes, so two deployments with
            different seeds place keys differently but each is fully
            reproducible.
    """

    def __init__(
        self,
        num_shards: int,
        vnodes: int = DEFAULT_VNODES,
        seed: int = 0,
    ):
        if num_shards < 1:
            raise ConfigurationError(
                f"num_shards must be >= 1, got {num_shards}"
            )
        if vnodes < 1:
            raise ConfigurationError(f"vnodes must be >= 1, got {vnodes}")
        self.num_shards = num_shards
        self.vnodes = vnodes
        self.seed = seed
        points: List[Tuple[int, int]] = []
        for shard in range(num_shards):
            for vnode in range(vnodes):
                points.append(
                    (_hash_point(f"{seed}:shard:{shard}:{vnode}"), shard)
                )
        # Sorting on (point, shard) makes collisions (astronomically
        # unlikely at 64 bits, but cheap to handle) deterministic too.
        points.sort()
        self._points = points
        self._hashes = [point for point, _shard in points]

    def key_point(self, key: object) -> int:
        """Where ``key`` lands on the circle (uses ``repr`` for ints/strs)."""
        return _hash_point(f"{self.seed}:key:{key!r}")

    def lookup(
        self, key: object, live: Optional[Sequence[int]] = None
    ) -> int:
        """The live shard owning ``key``.

        Args:
            key: Any value with a stable ``repr`` (data ids are ints).
            live: Shard ids currently up; ``None`` means all shards.

        Returns:
            The owning shard id: the first live shard point clockwise
            from the key's hash.

        Raises:
            ConfigurationError: If ``live`` is empty or names unknown
                shards.
        """
        live_set: Optional[Set[int]] = None
        if live is not None:
            live_set = set(live)
            if not live_set:
                raise ConfigurationError("no live shards to route to")
            unknown = live_set - set(range(self.num_shards))
            if unknown:
                raise ConfigurationError(
                    f"unknown live shards {sorted(unknown)!r}; "
                    f"ring has shards 0..{self.num_shards - 1}"
                )
        start = bisect.bisect_right(self._hashes, self.key_point(key))
        total = len(self._points)
        for offset in range(total):
            _point, shard = self._points[(start + offset) % total]
            if live_set is None or shard in live_set:
                return shard
        raise ConfigurationError("no live shards to route to")  # pragma: no cover

    def ownership(
        self, keys: Sequence[object], live: Optional[Sequence[int]] = None
    ) -> List[int]:
        """Vectorised :meth:`lookup` (keeps property tests readable)."""
        return [self.lookup(key, live) for key in keys]

    def successors(self, key: object) -> List[int]:
        """Every shard, in first-encounter clockwise order from ``key``.

        Element 0 is :meth:`lookup`'s owner (all shards live); elements
        1.. are the deterministic failover order the replicated router
        walks when earlier shards are down. The order depends only on
        ``(num_shards, vnodes, seed, key)`` — never on the live set —
        so two processes (and two incarnations of the same deployment)
        always agree on where a key fails over next.
        """
        start = bisect.bisect_right(self._hashes, self.key_point(key))
        total = len(self._points)
        seen: Set[int] = set()
        order: List[int] = []
        for offset in range(total):
            _point, shard = self._points[(start + offset) % total]
            if shard not in seen:
                seen.add(shard)
                order.append(shard)
                if len(order) == self.num_shards:
                    break
        return order


__all__ = ["DEFAULT_VNODES", "HashRing"]
