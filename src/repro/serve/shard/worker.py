"""One shard session: a full ``SchedulingService`` in one process.

A shard worker is deliberately *not* a new kind of service — it is the
PR 5 :class:`~repro.serve.service.SchedulingService` verbatim, fed a
pre-routed request stream and scoped to its shard's disks, data subset
and derived seed. That is the whole determinism argument: a shard's
report is byte-identical to an unsharded run over the same sub-fleet
with the same seed because it *is* that run.

Each worker owns its own :class:`~repro.serve.clock.VirtualTimeLoop`
(virtual clocks are per-process state — satellite fix of this PR), so
shards advance time independently; cross-shard ordering lives entirely
in the router's merge, never in a shared clock.

The request iterator may block (a multiprocessing queue ``get``). That
is safe under the virtual loop: a blocked ``get`` stalls *wall* time
only, while the virtual timeline — and therefore every outcome, metric
and report byte — depends solely on the message contents.
"""

from __future__ import annotations

import asyncio
import time
from multiprocessing.queues import Queue as MpQueue
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from repro.serve.clock import virtual_run
from repro.serve.loadgen import tally_outcomes
from repro.serve.service import SchedulingService
from repro.serve.shard.messages import (
    ShardFailure,
    ShardProgress,
    ShardRequest,
    ShardResult,
)
from repro.serve.shard.reporting import shard_document
from repro.serve.shard.topology import ShardSpec


async def _session(
    spec: ShardSpec, messages: Iterable[Optional[ShardRequest]]
) -> ShardResult:
    """Run one shard's whole lifecycle on the current (virtual) loop.

    The report and registry dump are assembled *inside* the coroutine,
    while the service's loop-bound clock is still live.
    """
    service = SchedulingService(spec.service, catalog=spec.make_catalog())
    await service.start()
    clock = service.clock
    loop = asyncio.get_running_loop()
    indices: List[int] = []
    tasks: "List[asyncio.Task[object]]" = []
    for message in messages:
        if message is None:  # router's end-of-stream sentinel
            break
        await clock.sleep_until(message.arrival_s)
        indices.append(message.index)
        tasks.append(
            loop.create_task(
                service.submit(
                    message.client_id,
                    message.data_id,
                    size_bytes=message.size_bytes,
                )
            )
        )
    outcomes = tuple(await asyncio.gather(*tasks))
    await service.drain(grace_s=spec.drain_grace_s)
    tally = tally_outcomes(outcomes)
    document = shard_document(spec, service, tally)
    dump = service.metrics.dump()
    return ShardResult(
        shard_id=spec.shard_id,
        indices=tuple(indices),
        outcomes=outcomes,
        registry_dump=dump,
        document=document,
        virtual_elapsed_s=clock.now,
        compute_cpu_s=0.0,  # stamped by run_shard_session
        events_processed=service.backend.events_processed,
    )


def run_shard_session(
    spec: ShardSpec, messages: Iterable[Optional[ShardRequest]]
) -> ShardResult:
    """Execute one shard session to completion (blocking).

    Works identically for the serial path (``messages`` is a list) and
    the worker process (``messages`` drains a queue). ``compute_cpu_s``
    measures CPU time spent inside the session — queue-blocked waiting
    costs nothing — so multi-process runs can report a critical-path
    rate even on single-core hosts.
    """
    # CPU-clock reads measure worker cost only; nothing scheduled
    # depends on them, so determinism is untouched.
    started_cpu_s = time.process_time()  # reprolint: disable=RPL101
    result = virtual_run(_session(spec, messages))
    elapsed_cpu_s = time.process_time() - started_cpu_s  # reprolint: disable=RPL101
    return ShardResult(
        shard_id=result.shard_id,
        indices=result.indices,
        outcomes=result.outcomes,
        registry_dump=result.registry_dump,
        document=result.document,
        virtual_elapsed_s=result.virtual_elapsed_s,
        compute_cpu_s=elapsed_cpu_s,
        events_processed=result.events_processed,
    )


def _drain_chunks(
    request_q: "MpQueue[Optional[Sequence[ShardRequest]]]",
    on_chunk: Optional[Callable[[int], None]] = None,
) -> Iterator[ShardRequest]:
    """Flatten the router's chunked stream until the ``None`` sentinel.

    The router batches requests per queue put (one pickle per chunk
    instead of per request) purely to cut serialisation overhead; the
    worker sees the identical flat, ordered message stream.
    ``on_chunk`` (if given) fires with the running chunk count as each
    chunk is taken off the queue — the liveness heartbeat hook.
    """
    chunks = 0
    for chunk in iter(request_q.get, None):
        chunks += 1
        if on_chunk is not None:
            on_chunk(chunks)
        for message in chunk:
            yield message


def shard_worker_main(
    spec: ShardSpec,
    request_q: "MpQueue[Optional[Sequence[ShardRequest]]]",
    response_q: "MpQueue[object]",
) -> None:
    """Worker-process entry point: drain the request queue, reply once.

    On failure a best-effort :class:`ShardFailure` goes back before the
    exception re-raises (so the parent sees a non-zero exit *and* a
    reason); the router's collection barrier additionally polls worker
    liveness, so even a SIGKILL (no reply at all) cannot wedge it.
    A :class:`ShardProgress` heartbeat precedes the reply for every
    chunk consumed, which is what lets the barrier's response timeout
    tell a slow worker from a hung one.
    """

    def heartbeat(chunks: int) -> None:
        response_q.put(
            ShardProgress(shard_id=spec.shard_id, chunks_consumed=chunks)
        )

    try:
        result = run_shard_session(
            spec, _drain_chunks(request_q, on_chunk=heartbeat)
        )
        response_q.put(result)
    except Exception as error:
        response_q.put(ShardFailure(shard_id=spec.shard_id, error=repr(error)))
        raise


__all__ = ["run_shard_session", "shard_worker_main"]
