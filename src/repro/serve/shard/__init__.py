"""Sharded serving: multi-process scale-out of the PR 5 service.

The single-process :class:`~repro.serve.service.SchedulingService` runs
the whole disk fleet behind one ``SimBackend`` — fine for hundreds of
requests per second, nowhere near the ROADMAP north star. This package
partitions the fleet into N shards, each a full service (backend +
engine + scheduler + admission) in its own worker process, behind a
consistent-hash router:

* :mod:`repro.serve.shard.ring` — the consistent-hash ring (process-
  stable ``blake2b`` points, virtual nodes, live-set aware lookup and
  deterministic successor chains).
* :mod:`repro.serve.shard.topology` — fleet partitioning: disks are
  split contiguously, data ids are assigned to shards by the ring, and
  each shard builds its placement catalog over *its own* data subset.
  With ``shard_replication_factor > 1`` every data id additionally
  lives on replica shards (:func:`replica_table`), which is what makes
  cross-shard failover possible.
* :mod:`repro.serve.shard.messages` — the picklable request/response
  wire types crossing the process boundary (including the chaos
  instructions and the worker liveness heartbeat).
* :mod:`repro.serve.shard.worker` — one shard session: a
  ``SchedulingService`` under its own per-process ``VirtualTimeLoop``.
* :mod:`repro.serve.shard.supervisor` — worker lifecycle owner: spawn,
  hang detection (heartbeat-fed response timeout), SIGKILL-and-restart
  from the derived seed, outbox replay, recovery accounting.
* :mod:`repro.serve.shard.router` — fan-out/fan-in: serial and
  multiprocess execution, replica-aware failover routing, the scripted
  chaos timeline (kills, hangs, recoveries), and first-wins dedup at
  the merge.
* :mod:`repro.serve.shard.reporting` — per-shard and merged
  ``repro-bench/1`` documents (cross-shard metric aggregation).

The determinism contract: a shard worker's report is byte-identical to
an unsharded run over the same sub-fleet with the same seed, and the
serial and multiprocess execution paths produce byte-identical merged
reports — at ``shard_replication_factor = 1`` *and* above it.
``tests/serve/test_shard_determinism.py`` pins both.
"""

from repro.serve.shard.messages import (
    ShardFailure,
    ShardHang,
    ShardKill,
    ShardProgress,
    ShardRequest,
    ShardResult,
)
from repro.serve.shard.reporting import shard_document, sharded_document
from repro.serve.shard.ring import HashRing
from repro.serve.shard.router import (
    ShardedRunResult,
    plan_messages,
    run_sharded,
)
from repro.serve.shard.supervisor import (
    RecoveryReport,
    ShardSupervisor,
    SupervisorConfig,
)
from repro.serve.shard.topology import (
    ShardedServiceConfig,
    ShardSpec,
    assign_data,
    build_topology,
    replica_table,
)
from repro.serve.shard.worker import run_shard_session, shard_worker_main

__all__ = [
    "HashRing",
    "RecoveryReport",
    "ShardFailure",
    "ShardHang",
    "ShardKill",
    "ShardProgress",
    "ShardRequest",
    "ShardResult",
    "ShardSpec",
    "ShardSupervisor",
    "ShardedRunResult",
    "ShardedServiceConfig",
    "SupervisorConfig",
    "assign_data",
    "build_topology",
    "plan_messages",
    "replica_table",
    "run_shard_session",
    "run_sharded",
    "shard_document",
    "shard_worker_main",
    "sharded_document",
]
