"""Admission control: typed outcomes, token buckets, bounded ingress.

Overload handling is a first-class result, not an exception: every
submitted request resolves to either a :class:`Completed` or a
:class:`Rejected` value, so callers (and the load generator) can count
shed load without try/except plumbing and the service never grows an
unbounded queue — the paper's serving-layer reading of the batch/online
trade-off only makes sense once ingress is bounded.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Union

from repro.errors import ConfigurationError
from repro.types import DataId, DiskId, RequestId


class RejectReason(enum.Enum):
    """Why a request was shed instead of scheduled."""

    #: The bounded ingress queue is at capacity (backpressure).
    QUEUE_FULL = "queue_full"
    #: The client exhausted its token bucket.
    RATE_LIMITED = "rate_limited"
    #: The service is draining; no new work is accepted.
    SHUTTING_DOWN = "shutting_down"
    #: The shard owning the requested data is down (sharded serving)
    #: and no live replica shard exists — the terminal "keyspace lost"
    #: outcome. With ``shard_replication_factor > 1`` or supervised
    #: recovery this should never be emitted for a single failure.
    SHARD_DOWN = "shard_down"
    #: The request *was* failed over to a live replica shard, and that
    #: shard then also died before answering. Diagnosably different
    #: from :attr:`SHARD_DOWN`: failover was attempted and lost a race
    #: with a second failure, rather than being impossible.
    FAILED_OVER = "failed_over"
    #: Every in-shard replica disk of the requested data is dead
    #: (scripted disk-death drills); the shard is up but cannot serve
    #: this id.
    DATA_UNAVAILABLE = "data_unavailable"


#: The reasons that existed before cross-shard replication, in the
#: serialisation order reports have always used. Outcome tallies and
#: per-service metric counters always materialise these four — and the
#: newer reasons only when actually observed — so documents from
#: replication-free runs stay byte-identical to their pinned digests.
LEGACY_REASONS: "tuple[RejectReason, ...]" = (
    RejectReason.QUEUE_FULL,
    RejectReason.RATE_LIMITED,
    RejectReason.SHARD_DOWN,
    RejectReason.SHUTTING_DOWN,
)


@dataclass(frozen=True)
class Completed:
    """A request that was scheduled and serviced by a disk.

    Attributes:
        request_id: Stream position assigned at admission.
        client_id: Submitting client.
        data_id: Requested data item.
        disk_id: Replica that serviced the request.
        arrival_s: Service-clock arrival instant in seconds.
        completed_s: Service-clock completion instant in seconds.
    """

    request_id: RequestId
    client_id: str
    data_id: DataId
    disk_id: DiskId
    arrival_s: float
    completed_s: float

    @property
    def accepted(self) -> bool:
        return True

    @property
    def response_time_s(self) -> float:
        """Queueing + service latency in seconds."""
        return self.completed_s - self.arrival_s


@dataclass(frozen=True)
class Rejected:
    """A request shed at admission (never reached a scheduler).

    Attributes:
        client_id: Submitting client.
        data_id: Requested data item.
        reason: Which admission gate shed it.
        rejected_s: Service-clock rejection instant in seconds.
    """

    client_id: str
    data_id: DataId
    reason: RejectReason
    rejected_s: float

    @property
    def accepted(self) -> bool:
        return False


#: Every submit resolves to exactly one of these.
Outcome = Union[Completed, Rejected]


class TokenBucket:
    """Deterministic token bucket (refill derived from timestamps).

    No background task refills the bucket; the token balance is a pure
    function of the last-acquire timestamp, so behaviour is identical
    under the virtual and the wall clock.
    """

    __slots__ = ("rate_per_s", "burst", "_tokens", "_updated_s")

    def __init__(self, rate_per_s: float, burst: float):
        if rate_per_s <= 0:
            raise ConfigurationError(
                f"token rate must be positive, got {rate_per_s}"
            )
        if burst < 1:
            raise ConfigurationError(f"burst must be >= 1 token, got {burst}")
        self.rate_per_s = rate_per_s
        self.burst = burst
        self._tokens = burst
        self._updated_s = 0.0

    def _refill(self, now_s: float) -> None:
        if now_s > self._updated_s:
            self._tokens = min(
                self.burst,
                self._tokens + (now_s - self._updated_s) * self.rate_per_s,
            )
            self._updated_s = now_s

    def available(self, now_s: float) -> float:
        """Token balance at ``now_s`` (peek; does not consume)."""
        self._refill(now_s)
        return self._tokens

    def try_acquire(self, now_s: float, cost: float = 1.0) -> bool:
        """Consume ``cost`` tokens if the balance allows it."""
        if cost <= 0:
            raise ConfigurationError(f"token cost must be positive, got {cost}")
        self._refill(now_s)
        if self._tokens >= cost:
            self._tokens -= cost
            return True
        return False


class AdmissionController:
    """Bounded-queue backpressure plus per-client token-bucket limiting.

    Gate order: the queue bound is checked first (a full queue rejects
    without charging the client's bucket), then the client's bucket.
    ``client_rate_per_s = None`` disables rate limiting entirely.
    """

    def __init__(
        self,
        queue_limit: int,
        client_rate_per_s: Optional[float] = None,
        client_burst: float = 8.0,
    ):
        if queue_limit <= 0:
            raise ConfigurationError(
                f"queue_limit must be positive, got {queue_limit}"
            )
        self.queue_limit = queue_limit
        self.client_rate_per_s = client_rate_per_s
        self.client_burst = client_burst
        self._buckets: Dict[str, TokenBucket] = {}
        if client_rate_per_s is not None:
            # Validate eagerly so a bad config fails at construction,
            # not on the first admit.
            TokenBucket(client_rate_per_s, client_burst)

    def bucket(self, client_id: str) -> Optional[TokenBucket]:
        """The client's bucket (created on first use; None when unlimited)."""
        if self.client_rate_per_s is None:
            return None
        existing = self._buckets.get(client_id)
        if existing is None:
            existing = self._buckets[client_id] = TokenBucket(
                self.client_rate_per_s, self.client_burst
            )
        return existing

    def admit(
        self, client_id: str, now_s: float, queue_depth: int
    ) -> Optional[RejectReason]:
        """``None`` to admit, or the :class:`RejectReason` to shed."""
        if queue_depth >= self.queue_limit:
            return RejectReason.QUEUE_FULL
        bucket = self.bucket(client_id)
        if bucket is not None and not bucket.try_acquire(now_s):
            return RejectReason.RATE_LIMITED
        return None


__all__ = [
    "AdmissionController",
    "Completed",
    "Outcome",
    "Rejected",
    "RejectReason",
    "TokenBucket",
]
