"""repro.serve: the async energy-aware scheduling service.

The paper's schedulers, re-hosted behind a live request API: an asyncio
service with online and micro-batch dispatch policies, bounded-ingress
admission control, typed load shedding, graceful drain, live metrics,
and a deterministic virtual-clock mode for byte-reproducible sessions.
"""

from repro.serve.admission import (
    AdmissionController,
    Completed,
    Outcome,
    Rejected,
    RejectReason,
    TokenBucket,
)
from repro.serve.backend import SimBackend
from repro.serve.clock import ServiceClock, VirtualTimeLoop, virtual_run
from repro.serve.loadgen import (
    LoadgenConfig,
    LoadResult,
    run_closed_loop,
    run_load,
    run_open_loop,
)
from repro.serve.reporting import serve_document, write_serve_document
from repro.serve.service import (
    POLICIES,
    POLICY_MICRO_BATCH,
    POLICY_ONLINE,
    SchedulingService,
    ServiceConfig,
)

__all__ = [
    "POLICIES",
    "POLICY_MICRO_BATCH",
    "POLICY_ONLINE",
    "AdmissionController",
    "Completed",
    "LoadResult",
    "LoadgenConfig",
    "Outcome",
    "Rejected",
    "RejectReason",
    "SchedulingService",
    "ServiceClock",
    "ServiceConfig",
    "SimBackend",
    "TokenBucket",
    "VirtualTimeLoop",
    "run_closed_loop",
    "run_load",
    "run_open_loop",
    "serve_document",
    "virtual_run",
    "write_serve_document",
]
