"""Serve-session reports in the ``repro-bench/1`` document schema.

A serving run produces the same kind of artifact as an offline bench: a
single JSON document that CI can validate with
:func:`repro.experiments.harness.schema.validate_bench_payload` and diff
across commits. Under the virtual clock the document is **byte
reproducible** — wall-clock-dependent fields are pinned (``created_unix
= 0.0``, ``peak_rss_bytes = null``) and ``wall_clock_s`` records elapsed
*virtual* seconds, which are themselves deterministic.
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.harness.schema import BENCH_SCHEMA
from repro.serve.loadgen import LoadgenConfig, LoadResult
from repro.serve.service import SchedulingService


def serve_document(
    service: SchedulingService,
    load_config: LoadgenConfig,
    result: LoadResult,
    virtual_clock: bool,
) -> Dict[str, Any]:
    """Assemble the bench-schema document for one finished session.

    Call after :meth:`~repro.serve.service.SchedulingService.drain` —
    the snapshot then covers the whole session including final idle
    energy. ``virtual_clock`` selects reproducible stand-ins for the
    wall-only fields.
    """
    config = service.config
    backend = service.backend
    elapsed_s = service.clock.now
    snapshot = service.metrics_snapshot()
    events = backend.events_processed
    return {
        "schema": BENCH_SCHEMA,
        "bench": f"serve:{config.policy}",
        "created_unix": 0.0 if virtual_clock else time.time(),
        "scale": float(load_config.num_requests),
        "mwis_scale": 1.0,
        "seed": config.seed,
        "jobs": 1,
        "wall_clock_s": elapsed_s,
        "events_processed": events,
        "events_per_sec": events / elapsed_s if elapsed_s > 0 else 0.0,
        "peak_rss_bytes": None if virtual_clock else _peak_rss_bytes(),
        "cache": {
            "enabled": False,
            "hits": 0,
            "misses": 0,
            "corrupt": 0,
            "hit_rate": 0.0,
        },
        "points": [],
        "result": {
            "service": {
                "policy": config.policy,
                "num_disks": config.num_disks,
                "replication_factor": config.replication_factor,
                "num_data": config.num_data,
                "queue_limit": config.queue_limit,
                "client_rate_per_s": config.client_rate_per_s,
                "window_s": config.window_s,
                "max_batch": config.max_batch,
                "virtual_clock": virtual_clock,
            },
            "load": {
                "num_requests": load_config.num_requests,
                "rate_per_s": load_config.rate_per_s,
                "num_clients": load_config.num_clients,
                "arrival": load_config.arrival,
                "loop": load_config.loop,
                "seed": load_config.seed,
            },
            "outcome": {
                "offered": result.offered,
                "completed": result.completed,
                "rejected": result.rejected,
                "rejected_by_reason": dict(result.rejected_by_reason),
                "completed_fraction": result.completed_fraction,
            },
            "metrics": snapshot,
        },
    }


def _peak_rss_bytes() -> Optional[int]:
    try:
        import resource
    except ImportError:  # pragma: no cover - non-POSIX
        return None
    usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # Linux reports KiB, macOS reports bytes.
    import sys

    return usage if sys.platform == "darwin" else usage * 1024


def write_serve_document(
    document: Dict[str, Any], path: Union[str, Path]
) -> Path:
    """Write ``document`` as canonical (sorted, indented) JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(document, indent=2, sort_keys=True) + "\n",
        encoding="utf-8",
    )
    return target


__all__ = ["serve_document", "write_serve_document"]
