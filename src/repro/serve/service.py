"""The asyncio scheduling service: live requests over the paper's models.

:class:`SchedulingService` accepts read requests at runtime and drives
the simulated disk fleet through one of two dispatch policies, which are
exactly the paper's two non-clairvoyant scheduling models re-hosted as
serving policies:

* ``online`` — each request is assigned the instant it arrives, by the
  Eq. 6 cost heuristic (:class:`~repro.core.heuristic.HeuristicScheduler`).
* ``micro-batch`` — requests queue for a configurable window and are
  dispatched together through the WSC batch scheduler
  (:class:`~repro.core.wsc.WSCBatchScheduler`), reproducing the batch
  model's few-disks-active behaviour as a latency/energy trade-off knob.

Around the policies sit the serving concerns: bounded-ingress admission
control with per-client token buckets (:mod:`repro.serve.admission`),
typed load shedding, graceful drain, and a live
:class:`~repro.sim.metrics.MetricsRegistry`. Everything is clock-agnostic:
run it under :func:`~repro.serve.clock.virtual_run` for deterministic,
byte-reproducible sessions, or on a stock loop for wall-clock serving.
"""

from __future__ import annotations

import asyncio
import math
import random
from collections import deque
from dataclasses import dataclass
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.core.cost import CostFunction
from repro.core.heuristic import HeuristicScheduler
from repro.core.wsc import WSCBatchScheduler
from repro.errors import (
    ConfigurationError,
    ReplicaUnavailableError,
    SimulationError,
)
from repro.placement.catalog import PlacementCatalog
from repro.placement.schemes import ZipfOriginalUniformReplicas
from repro.power.profile import get_profile
from repro.serve.admission import (
    LEGACY_REASONS,
    AdmissionController,
    Completed,
    Outcome,
    Rejected,
    RejectReason,
)
from repro.serve.backend import SimBackend
from repro.serve.clock import ServiceClock
from repro.sim.config import SimulationConfig
from repro.sim.metrics import Counter, MetricsRegistry, observe_engine
from repro.types import DEFAULT_REQUEST_BYTES, DataId, DiskId, Request

#: The two dispatch policies.
POLICY_ONLINE = "online"
POLICY_MICRO_BATCH = "micro-batch"
POLICIES = (POLICY_ONLINE, POLICY_MICRO_BATCH)


@dataclass(frozen=True)
class ServiceConfig:
    """Everything about one serving session.

    Attributes:
        policy: ``"online"`` or ``"micro-batch"``.
        num_disks: Fleet size.
        replication_factor: Copies per data item (paper mid-range: 3).
        num_data: Data population size.
        zipf_exponent: Original-placement skew (paper: 1.0).
        seed: Base seed for placement and per-disk service-time draws.
        profile_name: Disk power profile (paper evaluation numbers).
        queue_limit: Bounded ingress capacity; arrivals beyond it are
            shed with :attr:`RejectReason.QUEUE_FULL`.
        client_rate_per_s: Per-client token refill rate in requests per
            second (``None`` disables rate limiting).
        client_burst: Per-client bucket capacity in tokens.
        window_s: Micro-batch window length in seconds (paper batch
            interval: 0.1 s).
        max_batch: Cap on requests dispatched per window tick (``None``
            = whole queue); the remainder waits for the next tick.
        alpha: Eq. 6 energy weight.
        beta: Eq. 6 energy scale.
        disk_deaths: Scripted permanent disk failures as ``(disk_id,
            at_s)`` pairs in service-clock seconds — the chaos drills'
            in-shard fault axis. Each death drains the dying disk's
            queue back to the service, which redispatches to live
            replicas or sheds with
            :attr:`RejectReason.DATA_UNAVAILABLE`.
    """

    policy: str = POLICY_ONLINE
    num_disks: int = 18
    replication_factor: int = 3
    num_data: int = 2_000
    zipf_exponent: float = 1.0
    seed: int = 1
    profile_name: str = "paper-evaluation"
    queue_limit: int = 1_024
    client_rate_per_s: Optional[float] = None
    client_burst: float = 8.0
    window_s: float = 0.1
    max_batch: Optional[int] = None
    alpha: float = 0.2
    beta: float = 100.0
    disk_deaths: Tuple[Tuple[DiskId, float], ...] = ()

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ConfigurationError(
                f"unknown policy {self.policy!r}; known: {POLICIES}"
            )
        if self.num_data <= 0:
            raise ConfigurationError("num_data must be positive")
        if self.window_s <= 0:
            raise ConfigurationError("window_s must be positive")
        if self.max_batch is not None and self.max_batch <= 0:
            raise ConfigurationError("max_batch must be positive or None")
        for disk_id, at_s in self.disk_deaths:
            if not 0 <= disk_id < self.num_disks:
                raise ConfigurationError(
                    f"disk death names disk {disk_id}, outside the fleet "
                    f"0..{self.num_disks - 1}"
                )
            if at_s < 0:
                raise ConfigurationError(
                    f"disk death time must be >= 0, got {at_s}"
                )
        # num_disks / replication / queue_limit / rates are validated by
        # the objects built from them (SimulationConfig, placement,
        # AdmissionController).

    def make_catalog(
        self, data_ids: Optional[Sequence[DataId]] = None
    ) -> PlacementCatalog:
        """The paper's placement: Zipf originals, uniform replicas.

        Args:
            data_ids: The data population to place. ``None`` (the
                unsharded default) places ``range(num_data)``; a sharded
                deployment passes each shard its owned subset so every
                replica of an item lands inside that shard's sub-fleet.
        """
        scheme = ZipfOriginalUniformReplicas(
            replication_factor=self.replication_factor,
            zipf_exponent=self.zipf_exponent,
        )
        population = (
            list(range(self.num_data)) if data_ids is None else list(data_ids)
        )
        return scheme.place(
            population,
            self.num_disks,
            random.Random(self.seed + 7),
        )

    def make_sim_config(self) -> SimulationConfig:
        """The backend's simulation config (paper profile, 2CPM)."""
        return SimulationConfig(
            num_disks=self.num_disks,
            profile=get_profile(self.profile_name),
            seed=self.seed,
        )

    def cost_function(self) -> CostFunction:
        """The Eq. 6 cost weights both dispatch policies score with."""
        return CostFunction(alpha=self.alpha, beta=self.beta)


class _Pending:
    """One admitted request waiting for dispatch or completion."""

    __slots__ = ("request", "client_id", "future")

    def __init__(
        self,
        request: Request,
        client_id: str,
        future: "asyncio.Future[Outcome]",
    ):
        self.request = request
        self.client_id = client_id
        self.future = future


class SchedulingService:
    """Async request front end over the energy-aware schedulers.

    Lifecycle: construct → ``await start()`` → any number of concurrent
    ``await submit(...)`` → ``await drain(...)``. Instances are
    single-use, like the simulation they wrap.

    Args:
        config: The session parameters.
        catalog: Optional placement override. ``None`` builds the
            config's own Zipf catalog; a sharded deployment passes each
            shard worker the catalog over its owned data subset.
    """

    def __init__(
        self,
        config: ServiceConfig,
        catalog: Optional[PlacementCatalog] = None,
    ):
        self._config = config
        self._catalog_override = catalog
        self._started = False
        self._stopped = False
        self._draining = False
        self._drain_deadline_s: Optional[float] = None
        self._next_request_id = 0
        self._ingress: Deque[_Pending] = deque()
        self._inflight: Dict[int, _Pending] = {}
        # Built in start() so every asyncio object binds the running loop.
        self._clock: Optional[ServiceClock] = None
        self._backend: Optional[SimBackend] = None
        self.metrics = MetricsRegistry()

    # -- lifecycle ------------------------------------------------------

    async def start(self) -> None:
        """Bind the running loop, build the backend, start the tasks."""
        if self._started:
            raise SimulationError("service already started")
        self._started = True
        config = self._config
        self._clock = ServiceClock()
        catalog = (
            self._catalog_override
            if self._catalog_override is not None
            else config.make_catalog()
        )
        self._backend = SimBackend(
            catalog,
            config.make_sim_config(),
            self._on_complete,
        )
        # Scripted disk deaths (chaos drills only): the redispatch
        # scheduler exists only when deaths are configured, so the
        # healthy path is byte-identical to builds without this feature.
        self._redispatch: Optional[HeuristicScheduler] = None
        if config.disk_deaths:
            self._redispatch = HeuristicScheduler(config.cost_function())
            for disk_id, at_s in config.disk_deaths:
                self._backend.schedule_disk_death(
                    disk_id, at_s, self._on_disk_death
                )
        self._admission = AdmissionController(
            queue_limit=config.queue_limit,
            client_rate_per_s=config.client_rate_per_s,
            client_burst=config.client_burst,
        )
        if config.policy == POLICY_ONLINE:
            self._online: Optional[HeuristicScheduler] = HeuristicScheduler(
                config.cost_function()
            )
            self._batch: Optional[WSCBatchScheduler] = None
            dispatch = self._run_online()
        else:
            self._online = None
            self._batch = WSCBatchScheduler(
                interval=config.window_s,
                cost_function=config.cost_function(),
            )
            dispatch = self._run_micro_batch()
        self._arrived = asyncio.Event()
        self._engine_wake = asyncio.Event()
        self._drain_event = asyncio.Event()
        self._idle = asyncio.Event()
        self._pump_stop = False
        loop = asyncio.get_running_loop()
        self._dispatch_task = loop.create_task(dispatch)
        self._pump_task = loop.create_task(self._run_pump())
        self._init_metrics()

    def _init_metrics(self) -> None:
        metrics = self.metrics
        self._m_offered = metrics.counter("requests.offered")
        self._m_admitted = metrics.counter("requests.admitted")
        self._m_completed = metrics.counter("requests.completed")
        self._m_rejected = metrics.counter("requests.rejected")
        # Only the legacy reasons get eager counters: creating
        # ``rejected.failed_over`` etc. unconditionally would add zero
        # rows to every dump and break the pinned report digests. The
        # newer reasons materialise lazily on first occurrence.
        self._m_rejected_by = {
            reason: metrics.counter(f"rejected.{reason.value}")
            for reason in LEGACY_REASONS
        }
        self._m_batches = metrics.counter("batches.dispatched")
        self._m_empty_ticks = metrics.counter("batches.empty_ticks")
        self._m_queue_depth = metrics.gauge("queue.depth")
        self._m_inflight = metrics.gauge("inflight.depth")
        self._m_latency = metrics.histogram("response_s")
        self._m_queue_wait = metrics.histogram("queue_wait_s")
        self._m_batch_size = metrics.histogram("batch.size")

    def _reject_counter(self, reason: RejectReason) -> Counter:
        """The reason's counter, creating post-legacy ones on first use."""
        counter = self._m_rejected_by.get(reason)
        if counter is None:
            counter = self.metrics.counter(f"rejected.{reason.value}")
            self._m_rejected_by[reason] = counter
        return counter

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def clock(self) -> ServiceClock:
        """The service clock (available after :meth:`start`)."""
        if self._clock is None:
            raise SimulationError("service not started")
        return self._clock

    @property
    def backend(self) -> SimBackend:
        """The simulated fleet (available after :meth:`start`)."""
        if self._backend is None:
            raise SimulationError("service not started")
        return self._backend

    @property
    def draining(self) -> bool:
        return self._draining

    @property
    def queue_depth(self) -> int:
        """Admitted requests waiting for dispatch."""
        return len(self._ingress)

    @property
    def inflight(self) -> int:
        """Dispatched requests whose I/O has not completed."""
        return len(self._inflight)

    # -- request path ---------------------------------------------------

    async def submit(
        self,
        client_id: str,
        data_id: DataId,
        size_bytes: int = DEFAULT_REQUEST_BYTES,
    ) -> Outcome:
        """Submit one read; resolves at completion or rejects instantly.

        Returns:
            :class:`Completed` once a disk serviced the request, or
            :class:`Rejected` (without awaiting) when an admission gate
            shed it.
        """
        if not self._started or self._stopped:
            raise SimulationError("service is not running")
        clock = self.clock
        now_s = clock.now
        self._m_offered.inc()
        if self._draining:
            reason: Optional[RejectReason] = RejectReason.SHUTTING_DOWN
        else:
            reason = self._admission.admit(client_id, now_s, len(self._ingress))
        if reason is not None:
            self._m_rejected.inc()
            self._reject_counter(reason).inc()
            return Rejected(
                client_id=client_id,
                data_id=data_id,
                reason=reason,
                rejected_s=now_s,
            )
        request = Request(
            time=now_s,
            request_id=self._next_request_id,
            data_id=data_id,
            size_bytes=size_bytes,
        )
        self._next_request_id += 1
        self._m_admitted.inc()
        future: "asyncio.Future[Outcome]" = (
            asyncio.get_running_loop().create_future()
        )
        self._ingress.append(_Pending(request, client_id, future))
        self._m_queue_depth.set(len(self._ingress))
        self._arrived.set()
        return await future

    def _on_complete(self, request: Request, disk_id: DiskId, now_s: float) -> None:
        """Engine callback: one request's I/O finished at ``now_s``."""
        pending = self._inflight.pop(request.request_id)
        self._m_completed.inc()
        self._m_latency.observe(now_s - request.time)
        self._m_inflight.set(len(self._inflight))
        pending.future.set_result(
            Completed(
                request_id=request.request_id,
                client_id=pending.client_id,
                data_id=request.data_id,
                disk_id=disk_id,
                arrival_s=request.time,
                completed_s=now_s,
            )
        )
        if self._draining and not self._inflight:
            self._idle.set()

    def _dispatch_one(self, pending: _Pending, disk_id: DiskId) -> None:
        """Move one admitted request onto its chosen disk."""
        backend = self.backend
        self._inflight[pending.request.request_id] = pending
        self._m_inflight.set(len(self._inflight))
        self._m_queue_wait.observe(backend.now - pending.request.time)
        backend.submit(pending.request, disk_id)
        self._engine_wake.set()

    def _shed_unavailable(self, pending: _Pending, now_s: float) -> None:
        """Shed an admitted request whose every replica disk is dead."""
        self._m_rejected.inc()
        self._reject_counter(RejectReason.DATA_UNAVAILABLE).inc()
        pending.future.set_result(
            Rejected(
                client_id=pending.client_id,
                data_id=pending.request.data_id,
                reason=RejectReason.DATA_UNAVAILABLE,
                rejected_s=now_s,
            )
        )

    def _on_disk_death(
        self, disk_id: DiskId, drained: List[Request], now_s: float
    ) -> None:
        """Backend callback: a scripted disk death struck at ``now_s``.

        Every request drained off the dead disk is still in flight from
        the caller's point of view; redispatch each to its best live
        replica, or shed it with ``DATA_UNAVAILABLE`` when the death
        took the last copy.
        """
        scheduler = self._redispatch
        assert scheduler is not None  # only wired when deaths configured
        backend = self.backend
        self.metrics.counter("disks.failed").inc()
        redispatched = self.metrics.counter("requests.redispatched")
        for request in drained:
            pending = self._inflight[request.request_id]
            try:
                target = scheduler.choose(request, backend)
            except ReplicaUnavailableError:
                del self._inflight[request.request_id]
                self._shed_unavailable(pending, now_s)
                continue
            backend.submit(request, target)
            redispatched.inc()
        self._m_inflight.set(len(self._inflight))
        if self._draining and not self._inflight:
            self._idle.set()

    # -- dispatch policies ----------------------------------------------

    async def _run_online(self) -> None:
        """Per-request dispatch at the arrival instant (Eq. 6 cost)."""
        scheduler = self._online
        assert scheduler is not None
        backend = self.backend
        clock = self.clock
        ingress = self._ingress
        while True:
            while ingress:
                pending = ingress.popleft()
                self._m_queue_depth.set(len(ingress))
                backend.advance_to(clock.now)
                try:
                    disk_id = scheduler.choose(pending.request, backend)
                except ReplicaUnavailableError:
                    # Every replica disk died before dispatch.
                    self._shed_unavailable(pending, clock.now)
                    continue
                self._dispatch_one(pending, disk_id)
            if self._draining:
                break
            self._arrived.clear()
            await self._arrived.wait()

    async def _run_micro_batch(self) -> None:
        """Window-aligned batch dispatch through the WSC set-cover model.

        Ticks land on multiples of ``window_s`` (like the replay path's
        batch ticks). During a graceful drain with a deadline, the queue
        is force-flushed in one final batch exactly at the deadline —
        a batch arriving at that instant is dispatched, not shed.
        """
        scheduler = self._batch
        assert scheduler is not None
        backend = self.backend
        clock = self.clock
        window_s = self._config.window_s
        ingress = self._ingress
        while True:
            if self._draining and not ingress and self._drain_deadline_s is None:
                break
            now_s = clock.now
            # Strictly-future tick: floor arithmetic can round (k+1)*w
            # back onto now (e.g. 4.3 with w=0.1), which would spin.
            tick_index = math.floor(now_s / window_s) + 1
            next_tick_s = tick_index * window_s
            while next_tick_s <= now_s:
                tick_index += 1
                next_tick_s = tick_index * window_s
            deadline_s = self._drain_deadline_s
            target_s = (
                next_tick_s
                if deadline_s is None
                else min(next_tick_s, deadline_s)
            )
            if target_s > now_s:
                if self._draining:
                    await clock.sleep_until(target_s)
                else:
                    try:
                        await asyncio.wait_for(
                            self._drain_event.wait(), timeout=target_s - now_s
                        )
                        continue  # drain began: recompute the target
                    except asyncio.TimeoutError:
                        pass
            now_s = clock.now
            final = deadline_s is not None and now_s >= deadline_s
            self._flush_batch(limit=None if final else self._config.max_batch)
            if final:
                while ingress:  # max_batch no longer caps the force-flush
                    self._flush_batch(limit=None)
                break
            if self._draining and not ingress:
                break

    def _flush_batch(self, limit: Optional[int]) -> None:
        """Dispatch up to ``limit`` queued requests as one batch."""
        ingress = self._ingress
        if not ingress:
            self._m_empty_ticks.inc()
            return
        take = len(ingress) if limit is None else min(limit, len(ingress))
        batch = [ingress.popleft() for _ in range(take)]
        self._m_queue_depth.set(len(ingress))
        backend = self.backend
        backend.advance_to(self.clock.now)
        if self._config.disk_deaths:
            # Shed batch members whose last replica died; choose_batch
            # would otherwise raise for the whole batch.
            servable = []
            for pending in batch:
                if backend.available_locations(pending.request.data_id):
                    servable.append(pending)
                else:
                    self._shed_unavailable(pending, self.clock.now)
            batch = servable
            if not batch:
                return
        scheduler = self._batch
        assert scheduler is not None
        requests = [pending.request for pending in batch]
        decisions = scheduler.choose_batch(requests, backend)
        for pending in batch:
            self._dispatch_one(pending, decisions[pending.request.request_id])
        self._m_batches.inc()
        self._m_batch_size.observe(float(len(batch)))

    # -- engine pump ----------------------------------------------------

    async def _run_pump(self) -> None:
        """Advance the engine to each pending disk event as time passes.

        Sleeps until the engine's next event instant; a new submission
        (which may schedule earlier events) interrupts the sleep via
        ``_engine_wake``.
        """
        backend = self.backend
        clock = self.clock
        wake = self._engine_wake
        while not self._pump_stop:
            next_s = backend.next_event_time()
            if next_s is None:
                wake.clear()
                await wake.wait()
                continue
            now_s = clock.now
            if next_s > now_s:
                wake.clear()
                try:
                    await asyncio.wait_for(wake.wait(), timeout=next_s - now_s)
                except asyncio.TimeoutError:
                    pass
            backend.advance_to(clock.now)

    # -- shutdown -------------------------------------------------------

    async def drain(self, grace_s: Optional[float] = None) -> None:
        """Stop accepting work, flush the queue, wait for completions.

        New submissions are shed with
        :attr:`RejectReason.SHUTTING_DOWN` from the moment this is
        called. Queued requests are still dispatched: the online policy
        drains immediately; the micro-batch policy keeps ticking its
        windows and — when ``grace_s`` is given — force-flushes whatever
        remains in one final batch exactly ``grace_s`` seconds from now.
        In-flight I/O is always awaited, then the disk ledgers close.
        """
        if not self._started or self._stopped:
            raise SimulationError("service is not running")
        if self._draining:
            raise SimulationError("drain already in progress")
        if grace_s is not None and grace_s < 0:
            raise ConfigurationError(f"grace_s must be >= 0, got {grace_s}")
        self._draining = True
        if grace_s is not None:
            self._drain_deadline_s = self.clock.now + grace_s
        self._drain_event.set()
        self._arrived.set()
        await self._dispatch_task
        while self._inflight:
            self._idle.clear()
            if self._inflight:
                await self._idle.wait()
        self._pump_stop = True
        self._engine_wake.set()
        await self._pump_task
        self.backend.finalize(self.clock.now)
        self._stopped = True

    # -- observability --------------------------------------------------

    def metrics_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Deterministic point-in-time snapshot of every metric.

        Refreshes the derived gauges (energy, spin ops, engine counters,
        clock) before serialising, so one snapshot is a complete,
        self-consistent picture of the session.
        """
        backend = self.backend
        now_s = self.clock.now
        metrics = self.metrics
        metrics.gauge("time.now_s").set(now_s)
        metrics.gauge("energy.joules").set(backend.energy_at(now_s))
        metrics.gauge("energy.spin_operations").set(backend.spin_operations)
        metrics.gauge("requests.submitted_to_disks").set(
            backend.requests_submitted
        )
        observe_engine(metrics, backend._engine)
        self._m_queue_depth.set(len(self._ingress))
        self._m_inflight.set(len(self._inflight))
        return metrics.snapshot()


__all__ = [
    "POLICIES",
    "POLICY_MICRO_BATCH",
    "POLICY_ONLINE",
    "SchedulingService",
    "ServiceConfig",
]
