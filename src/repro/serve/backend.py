"""Live storage backend: the simulation stack under an injected clock.

:class:`SimBackend` wires the same pieces as
:class:`~repro.sim.storage.StorageSystem` — one
:class:`~repro.sim.engine.SimulationEngine`, a fleet of
:class:`~repro.disk.drive.SimulatedDisk` instances, a placement catalog —
but inverts who owns time. The trace replayer preloads every arrival and
drains the engine once; here the *service clock* owns the timeline, and
the backend is advanced incrementally (``advance_to``) as asyncio time
passes, with requests injected at their live arrival instants.

The backend implements the :class:`~repro.core.scheduler.SystemView`
protocol, so the existing online/batch schedulers run against it
unchanged — that is the whole point: the serving policies *are* the
paper's scheduling models, re-hosted behind a request API.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.disk.drive import SimulatedDisk
from repro.errors import PlacementError, SchedulingError, SimulationError
from repro.placement.catalog import PlacementCatalog
from repro.power.profile import DiskPowerProfile
from repro.sim.config import SimulationConfig
from repro.sim.engine import SimulationEngine
from repro.types import DataId, DiskId, OpKind, Request

#: ``(request, disk, completion time in seconds)`` completion callback.
CompletionCallback = Callable[[Request, DiskId, float], None]

#: ``(dead disk, drained requests, death time in seconds)`` — fired when a
#: scripted disk death strikes, *after* the disk's queue has been drained,
#: so the service can redispatch the survivors to live replicas.
DiskDeathCallback = Callable[[DiskId, List[Request], float], None]


class SimBackend:
    """The simulated disk fleet behind one serving session (single-use).

    Args:
        catalog: Data placement (``L``); replica routing uses it exactly
            as the replay path does.
        config: The standard simulation config (power profile, policy,
            service model, seed). Fault plans and caches are not
            supported on the serving path.
        on_complete: Invoked once per serviced request, *during*
            :meth:`advance_to`, at the request's completion instant.
    """

    def __init__(
        self,
        catalog: PlacementCatalog,
        config: SimulationConfig,
        on_complete: CompletionCallback,
    ):
        if config.fault_plan is not None and config.fault_plan.active:
            raise SchedulingError(
                "SimBackend does not support fault injection; "
                "use StorageSystem replay for fault studies"
            )
        self._catalog = catalog
        self._locations_by_data = catalog.mapping()
        self._config = config
        self._engine = SimulationEngine()
        self._disks: Dict[DiskId, SimulatedDisk] = {
            disk_id: SimulatedDisk(
                disk_id=disk_id,
                engine=self._engine,
                profile=config.profile,
                policy=config.policy,
                service_model=config.make_service_model(),
                rng=random.Random(config.seed * 1_000_003 + disk_id),
                on_complete=on_complete,
                initial_state=config.initial_state,
                record_transitions=config.record_transitions,
            )
            for disk_id in range(config.num_disks)
        }
        self._submitted = 0
        self._finalized = False
        self._dead: Set[DiskId] = set()

    # -- SystemView protocol -------------------------------------------

    @property
    def now(self) -> float:
        """Engine time in seconds (trails the service clock between
        :meth:`advance_to` calls)."""
        return self._engine.now

    @property
    def profile(self) -> DiskPowerProfile:
        return self._config.profile

    @property
    def disk_ids(self) -> range:
        return range(self._config.num_disks)

    def disk(self, disk_id: DiskId) -> SimulatedDisk:
        """Live view of one disk (SystemView protocol)."""
        return self._disks[disk_id]

    def locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """Placement lookup (SystemView protocol)."""
        try:
            return self._locations_by_data[data_id]
        except KeyError:
            raise PlacementError(f"unknown data id {data_id}")

    def available_locations(self, data_id: DataId) -> Tuple[DiskId, ...]:
        """Replicas on disks still alive.

        Identical to :meth:`locations` until a scripted disk death
        strikes (the common case pays no filtering cost); afterwards the
        dead disks are excluded, so the schedulers steer around them and
        raise :class:`~repro.errors.ReplicaUnavailableError` when every
        replica of an item is gone.
        """
        locations = self.locations(data_id)
        if not self._dead:
            return locations
        return tuple(
            disk_id for disk_id in locations if disk_id not in self._dead
        )

    # -- scripted disk deaths ------------------------------------------

    def schedule_disk_death(
        self, disk_id: DiskId, at_s: float, on_death: DiskDeathCallback
    ) -> None:
        """Crash-stop ``disk_id`` permanently at engine time ``at_s``.

        The death fires as an ordinary engine event during
        :meth:`advance_to`, so it is deterministic relative to every
        request event. Drained requests (in service + queued on the
        dying disk) are handed to ``on_death`` for redispatch.
        """
        if disk_id not in self._disks:
            raise SchedulingError(f"cannot kill unknown disk {disk_id}")
        # Arm the epoch guard on the doomed disk: a crash mid-spin-up or
        # mid-service leaves already-scheduled timer events behind, and
        # without the guard the stale event would fire into the
        # post-crash state machine. Disks without a scripted death keep
        # the unguarded hot path.
        self._disks[disk_id].enable_fault_injection()

        def _die() -> None:
            drained = self._disks[disk_id].fail(permanent=True)
            self._dead.add(disk_id)
            on_death(disk_id, drained, self._engine.now)

        self._engine.post(at_s, _die)

    @property
    def dead_disks(self) -> Tuple[DiskId, ...]:
        """Disks lost to scripted deaths so far, ascending."""
        return tuple(sorted(self._dead))

    # -- clock injection -----------------------------------------------

    def advance_to(self, time_s: float) -> None:
        """Run the engine up to the service clock's ``time_s`` seconds.

        Completion callbacks for every event due by then fire inside
        this call — including events scheduled at exactly the current
        instant (a disk acting at its submit time). A ``time_s`` behind
        the engine clock is a no-op (the engine never rewinds).
        """
        engine = self._engine
        if time_s < engine.now:
            return
        head_s = engine.peek_time()
        if time_s > engine.now or (head_s is not None and head_s <= time_s):
            engine.run(until=time_s)

    def next_event_time(self) -> Optional[float]:
        """Seconds timestamp of the next pending disk event, or None."""
        return self._engine.peek_time()

    # -- request injection ---------------------------------------------

    def submit(self, request: Request, disk_id: DiskId) -> None:
        """Hand ``request`` to ``disk_id`` at the current engine time.

        The same invariants as the replay dispatch path: the disk must
        exist, and a read must land on a replica of its data.
        """
        if self._finalized:
            raise SimulationError("backend already finalized")
        if disk_id not in self._disks:
            raise SchedulingError(f"scheduler chose unknown disk {disk_id}")
        if request.op is OpKind.READ and disk_id not in self._locations_by_data.get(
            request.data_id, ()
        ):
            raise SchedulingError(
                f"scheduler sent request {request.request_id} to disk {disk_id}, "
                f"which does not hold data {request.data_id}"
            )
        self._disks[disk_id].submit(request)
        self._submitted += 1

    # -- accounting ----------------------------------------------------

    @property
    def requests_submitted(self) -> int:
        """Requests handed to disks so far."""
        return self._submitted

    @property
    def events_processed(self) -> int:
        """Engine events fired so far."""
        return self._engine.events_processed

    def energy_at(self, time_s: float) -> float:
        """Fleet joules through ``time_s`` (open state intervals included)."""
        return sum(
            disk.stats.energy_at(time_s) for disk in self._disks.values()
        )

    @property
    def spin_operations(self) -> int:
        """Fleet spin-up + spin-down transitions so far."""
        return sum(
            disk.stats.spin_operations for disk in self._disks.values()
        )

    def finalize(self, time_s: float) -> None:
        """Close every disk ledger at ``time_s`` (idempotent)."""
        if self._finalized:
            return
        self.advance_to(time_s)
        for disk in self._disks.values():
            disk.finalize()
        self._finalized = True


__all__ = ["CompletionCallback", "DiskDeathCallback", "SimBackend"]
