"""Load generator for :class:`~repro.serve.service.SchedulingService`.

Two classic shapes, both seeded and deterministic under the virtual
clock:

* **open loop** — arrival instants are precomputed from a Poisson or
  bursty (MMPP) process and each request fires at its instant regardless
  of how the service is keeping up. This is the shape that exposes
  overload: a bounded ingress queue under an open-loop burst *must*
  shed load.
* **closed loop** — a fixed population of clients, each issuing its next
  request only after the previous one resolves (plus an optional think
  time). Offered load self-regulates, which is the shape for latency
  studies below saturation.

Data popularity follows the same Zipf law the placement layer assumes,
so the generated stream matches the paper's workload model end to end.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.placement.zipf import ZipfSampler
from repro.serve.admission import LEGACY_REASONS, Completed, Outcome, Rejected
from repro.serve.service import SchedulingService
from repro.traces.synthetic import ArrivalProcess, MMPPArrivals, PoissonArrivals

#: Arrival shapes the CLI exposes.
ARRIVAL_POISSON = "poisson"
ARRIVAL_BURSTY = "bursty"
ARRIVALS = (ARRIVAL_POISSON, ARRIVAL_BURSTY)

#: Loop disciplines.
LOOP_OPEN = "open"
LOOP_CLOSED = "closed"
LOOPS = (LOOP_OPEN, LOOP_CLOSED)


@dataclass(frozen=True)
class LoadgenConfig:
    """One load-generation session.

    Attributes:
        num_requests: Total requests to issue.
        rate_per_s: Mean arrival rate in requests/second (open loop) or
            the per-client think-rate base (closed loop; think time is
            ``num_clients / rate_per_s`` so the aggregate offered rate
            matches the open-loop meaning below saturation).
        num_clients: Distinct client identities (round-robin in open
            loop; concurrent issuers in closed loop).
        arrival: ``"poisson"`` or ``"bursty"`` (open loop only).
        loop: ``"open"`` or ``"closed"``.
        seed: Workload seed (independent of the service seed).
        zipf_exponent: Popularity skew of requested data ids.
        burst_factor: Bursty mode: burst rate is ``rate_per_s *
            burst_factor``, quiet rate is ``rate_per_s / burst_factor``.
    """

    num_requests: int = 1_000
    rate_per_s: float = 100.0
    num_clients: int = 8
    arrival: str = ARRIVAL_POISSON
    loop: str = LOOP_OPEN
    seed: int = 1
    zipf_exponent: float = 1.0
    burst_factor: float = 4.0

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")
        if self.rate_per_s <= 0:
            raise ConfigurationError("rate_per_s must be positive")
        if self.num_clients <= 0:
            raise ConfigurationError("num_clients must be positive")
        if self.arrival not in ARRIVALS:
            raise ConfigurationError(
                f"unknown arrival shape {self.arrival!r}; known: {ARRIVALS}"
            )
        if self.loop not in LOOPS:
            raise ConfigurationError(
                f"unknown loop discipline {self.loop!r}; known: {LOOPS}"
            )
        if self.burst_factor < 1:
            raise ConfigurationError("burst_factor must be >= 1")

    def arrival_process(self) -> ArrivalProcess:
        """The configured arrival process (open-loop timestamps)."""
        if self.arrival == ARRIVAL_POISSON:
            return PoissonArrivals(self.rate_per_s)
        return MMPPArrivals(
            burst_rate=self.rate_per_s * self.burst_factor,
            quiet_rate=self.rate_per_s / self.burst_factor,
            mean_burst=1.0,
            mean_quiet=1.0,
        )


@dataclass(frozen=True)
class LoadResult:
    """Outcome tally of one load-generation run.

    Attributes:
        outcomes: Every per-request outcome, in submission order.
        offered: Requests issued.
        completed: Requests serviced by a disk.
        rejected: Requests shed at admission.
        rejected_by_reason: Shed counts per :class:`RejectReason` value.
    """

    outcomes: Tuple[Outcome, ...]
    offered: int
    completed: int
    rejected: int
    rejected_by_reason: Tuple[Tuple[str, int], ...]

    @property
    def completed_fraction(self) -> float:
        return self.completed / self.offered if self.offered else 0.0

    @property
    def response_times_s(self) -> List[float]:
        """Response times of the completed requests, submission order."""
        return [
            outcome.response_time_s
            for outcome in self.outcomes
            if isinstance(outcome, Completed)
        ]


def tally_outcomes(outcomes: Sequence[Outcome]) -> LoadResult:
    """Public tally over any outcome sequence (the sharded router's merge)."""
    return _tally(list(outcomes))


def _tally(outcomes: List[Outcome]) -> LoadResult:
    completed = sum(1 for o in outcomes if isinstance(o, Completed))
    # Legacy reasons are always present (reports have pinned digests
    # that include their zeros); reasons added for cross-shard failover
    # appear only when actually observed.
    by_reason = {reason: 0 for reason in LEGACY_REASONS}
    for outcome in outcomes:
        if isinstance(outcome, Rejected):
            by_reason[outcome.reason] = by_reason.get(outcome.reason, 0) + 1
    return LoadResult(
        outcomes=tuple(outcomes),
        offered=len(outcomes),
        completed=completed,
        rejected=len(outcomes) - completed,
        rejected_by_reason=tuple(
            (reason.value, count) for reason, count in sorted(
                by_reason.items(), key=lambda item: item[0].value
            )
        ),
    )


def open_loop_schedule(
    config: LoadgenConfig, num_data: int
) -> List[Tuple[float, str, int]]:
    """Precompute one open-loop stream: ``(arrival_s, client_id, data_id)``.

    The draw order is exactly :func:`run_open_loop`'s — all arrival
    instants first, then all data ids from the same seeded stream — so a
    schedule consumer (the sharded router partitions this stream across
    shard workers) sees byte-identical workloads to a live unsharded
    session with the same :class:`LoadgenConfig`.
    """
    rng = random.Random(config.seed)
    times_s = config.arrival_process().generate(config.num_requests, rng)
    sampler = ZipfSampler(num_data, config.zipf_exponent)
    data_ids = [sampler.sample(rng) for _ in range(config.num_requests)]
    return [
        (times_s[index], f"client-{index % config.num_clients}", data_ids[index])
        for index in range(config.num_requests)
    ]


async def run_open_loop(
    service: SchedulingService, config: LoadgenConfig
) -> LoadResult:
    """Fire requests at precomputed instants, independent of responses.

    Arrival times come from the configured process; data ids from a Zipf
    sampler over the service's data population; client ids round-robin.
    Each submission runs as its own task so slow responses never delay
    later arrivals (the defining property of an open loop).
    """
    schedule = open_loop_schedule(config, service.config.num_data)
    clock = service.clock
    loop = asyncio.get_running_loop()
    tasks: "List[asyncio.Task[Outcome]]" = []
    for arrival_s, client_id, data_id in schedule:
        await clock.sleep_until(arrival_s)
        tasks.append(loop.create_task(service.submit(client_id, data_id)))
    outcomes = list(await asyncio.gather(*tasks))
    return _tally(outcomes)


async def run_closed_loop(
    service: SchedulingService, config: LoadgenConfig
) -> LoadResult:
    """Fixed client population; each client waits for its response.

    Every client draws its own think times (exponential, mean
    ``num_clients / rate_per_s``) and data ids from a per-client seeded
    stream, so the run is deterministic regardless of completion
    interleaving.
    """
    sampler = ZipfSampler(service.config.num_data, config.zipf_exponent)
    think_mean_s = config.num_clients / config.rate_per_s
    per_client = [
        config.num_requests // config.num_clients
        + (1 if index < config.num_requests % config.num_clients else 0)
        for index in range(config.num_clients)
    ]

    async def one_client(index: int) -> List[Outcome]:
        rng = random.Random(config.seed * 97 + index)
        clock = service.clock
        outcomes: List[Outcome] = []
        for _ in range(per_client[index]):
            await clock.sleep(rng.expovariate(1.0 / think_mean_s))
            outcomes.append(
                await service.submit(f"client-{index}", sampler.sample(rng))
            )
        return outcomes

    per_client_outcomes = await asyncio.gather(
        *(one_client(index) for index in range(config.num_clients))
    )
    outcomes = [
        outcome for client in per_client_outcomes for outcome in client
    ]
    return _tally(outcomes)


async def run_load(
    service: SchedulingService,
    config: LoadgenConfig,
    drain_grace_s: Optional[float] = None,
) -> LoadResult:
    """Start the service, run the configured load, drain, tally.

    The one-call entry point used by the CLI and the serve benchmark.
    """
    await service.start()
    if config.loop == LOOP_OPEN:
        result = await run_open_loop(service, config)
    else:
        result = await run_closed_loop(service, config)
    await service.drain(grace_s=drain_grace_s)
    return result


__all__ = [
    "ARRIVALS",
    "ARRIVAL_BURSTY",
    "ARRIVAL_POISSON",
    "LOOPS",
    "LOOP_CLOSED",
    "LOOP_OPEN",
    "LoadResult",
    "LoadgenConfig",
    "open_loop_schedule",
    "run_closed_loop",
    "run_load",
    "run_open_loop",
    "tally_outcomes",
]
