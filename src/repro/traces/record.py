"""Raw trace records.

A :class:`TraceRecord` is one line of a block-level I/O trace before it is
bound to a placement: a timestamp, an opaque data key (the paper treats
each unique ``(disk id, logical block address)`` pair as one data item),
a size, and the I/O direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from repro.types import DEFAULT_REQUEST_BYTES, OpKind


@dataclass(frozen=True, order=True)
class TraceRecord:
    """One block-level I/O event.

    Attributes:
        time: Seconds since trace start.
        data_key: Identity of the accessed data item; any hashable —
            synthetic traces use ints, parsed traces use
            ``(device, lba)`` tuples.
        op: Read or write.
        size_bytes: Transfer size.
    """

    time: float
    data_key: Hashable
    op: OpKind = OpKind.READ
    size_bytes: int = DEFAULT_REQUEST_BYTES

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"trace time must be >= 0, got {self.time}")
        if self.size_bytes <= 0:
            raise ValueError(f"size must be positive, got {self.size_bytes}")
