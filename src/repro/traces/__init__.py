"""Traces: synthetic generators, real-format parsers, workload binding."""

from repro.traces.cello import CelloLikeConfig, generate_cello_like, parse_hp_cello
from repro.traces.financial import (
    FinancialLikeConfig,
    generate_financial_like,
    parse_spc,
)
from repro.traces.record import TraceRecord
from repro.traces.transform import (
    merge_traces,
    scale_rate,
    slice_requests,
    time_window,
    with_read_fraction,
)
from repro.traces.synthetic import (
    ArrivalProcess,
    MMPPArrivals,
    ParetoArrivals,
    PoissonArrivals,
    ZipfPopularity,
    coefficient_of_variation,
    inter_arrival_gaps,
)
from repro.traces.workload import Workload, WorkloadStats

__all__ = [
    "ArrivalProcess",
    "CelloLikeConfig",
    "FinancialLikeConfig",
    "MMPPArrivals",
    "ParetoArrivals",
    "PoissonArrivals",
    "TraceRecord",
    "Workload",
    "WorkloadStats",
    "ZipfPopularity",
    "coefficient_of_variation",
    "generate_cello_like",
    "generate_financial_like",
    "inter_arrival_gaps",
    "merge_traces",
    "parse_hp_cello",
    "parse_spc",
    "scale_rate",
    "slice_requests",
    "time_window",
    "with_read_fraction",
]
