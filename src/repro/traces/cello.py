"""Cello-like trace: synthetic generator + HP-format parser.

The paper's primary workload is Cello — a block-level trace of an HP Labs
timesharing system (simulation, compilation, editing, mail). Its defining
properties for this study are (a) very bursty arrivals ("much higher
burstness and variation" than Financial1, Appendix A.4), (b) Zipf-like
block popularity (Section 4.2 cites the skew observed in Cello), and
(c) the experiment slice: 70 000 requests over ~30 000 data items.

:func:`generate_cello_like` synthesises a trace with those properties from
a seeded RNG; :func:`parse_hp_cello` reads the real trace format for users
who have obtained it from HP Labs.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.record import TraceRecord
from repro.traces.synthetic import MMPPArrivals, ZipfPopularity
from repro.types import DEFAULT_REQUEST_BYTES, OpKind


@dataclass(frozen=True)
class CelloLikeConfig:
    """Knobs of the synthetic Cello-like generator.

    Defaults reproduce the paper's experiment slice at full scale. The
    mean arrival rate is ``burst_rate * duty + quiet_rate * (1-duty)``;
    with the defaults it is ~21.5 req/s, i.e. 70 000 requests span roughly
    54 minutes, keeping per-disk inter-arrival gaps commensurate with the
    ~43 s breakeven time of the ``PAPER_EVAL`` profile (this calibration
    puts the replication-factor-1 energy at ~0.85 of always-on, near the
    paper's ~0.88).

    Attributes:
        num_requests: Requests to generate.
        num_data: Distinct data items (unique disk-id/LBA pairs).
        popularity_exponent: Zipf exponent of block popularity.
        burst_rate / quiet_rate: MMPP rates (req/s).
        mean_burst / mean_quiet: MMPP mean dwell times (s).
        read_fraction: Probability a record is a read.
        size_bytes: Request payload size (paper: 512 KiB file blocks).
    """

    num_requests: int = 70_000
    num_data: int = 30_000
    popularity_exponent: float = 0.9
    burst_rate: float = 120.0
    quiet_rate: float = 3.0
    mean_burst: float = 4.0
    mean_quiet: float = 22.0
    read_fraction: float = 1.0
    size_bytes: int = DEFAULT_REQUEST_BYTES

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")
        if self.num_data <= 0:
            raise ConfigurationError("num_data must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")

    def scaled(self, factor: float) -> "CelloLikeConfig":
        """Scaled-down copy preserving per-disk request density.

        Used by the benchmark harness: scaling requests and data by
        ``factor`` (and the experiment's disk count by the same factor)
        keeps each disk's arrival statistics — hence the energy shape —
        comparable to full scale.
        """
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return CelloLikeConfig(
            num_requests=max(1, int(self.num_requests * factor)),
            num_data=max(1, int(self.num_data * factor)),
            popularity_exponent=self.popularity_exponent,
            burst_rate=self.burst_rate * factor,
            quiet_rate=self.quiet_rate * factor,
            mean_burst=self.mean_burst,
            mean_quiet=self.mean_quiet,
            read_fraction=self.read_fraction,
            size_bytes=self.size_bytes,
        )


def generate_cello_like(
    config: CelloLikeConfig = CelloLikeConfig(), seed: int = 0
) -> List[TraceRecord]:
    """Generate a bursty, Zipf-popular synthetic trace (Cello substitute)."""
    rng = random.Random(seed)
    arrivals = MMPPArrivals(
        burst_rate=config.burst_rate,
        quiet_rate=config.quiet_rate,
        mean_burst=config.mean_burst,
        mean_quiet=config.mean_quiet,
    ).generate(config.num_requests, rng)
    popularity = ZipfPopularity(config.num_data, config.popularity_exponent)
    records = []
    for arrival in arrivals:
        op = OpKind.READ if rng.random() < config.read_fraction else OpKind.WRITE
        records.append(
            TraceRecord(
                time=arrival,
                data_key=popularity.sample(rng),
                op=op,
                size_bytes=config.size_bytes,
            )
        )
    return records


def parse_hp_cello(lines: Iterable[str]) -> List[TraceRecord]:
    """Parse the HP Labs Cello trace text format.

    Expected whitespace-separated columns (one I/O per line)::

        <timestamp-seconds> <device-id> <lba> <size-bytes> <R|W>

    Lines starting with ``#`` and blank lines are skipped. Timestamps are
    rebased so the first record is at t = 0.
    """
    parsed = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = stripped.split()
        if len(fields) < 5:
            raise TraceFormatError(
                f"cello line {line_number}: expected 5 fields, got {len(fields)}"
            )
        try:
            timestamp = float(fields[0])
            device = int(fields[1])
            lba = int(fields[2])
            size = int(fields[3])
        except ValueError as exc:
            raise TraceFormatError(f"cello line {line_number}: {exc}")
        flag = fields[4].upper()
        if flag not in ("R", "W"):
            raise TraceFormatError(
                f"cello line {line_number}: op must be R or W, got {fields[4]!r}"
            )
        parsed.append((timestamp, (device, lba), flag == "R", size))
    if not parsed:
        return []
    base_time = min(entry[0] for entry in parsed)
    raw = [
        TraceRecord(
            time=timestamp - base_time,
            data_key=data_key,
            op=OpKind.READ if is_read else OpKind.WRITE,
            size_bytes=size,
        )
        for timestamp, data_key, is_read, size in parsed
    ]
    raw.sort()
    return raw
