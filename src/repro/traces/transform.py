"""Trace transformations: slicing, time-scaling, merging, mix adjustment.

Real traces rarely fit an experiment as-is — the paper itself replays a
70 000-request *slice* of each trace. These utilities make the common
surgeries explicit and testable:

* :func:`slice_requests` — the first N records (the paper's slicing).
* :func:`time_window` — records within an interval, rebased to t=0.
* :func:`scale_rate` — compress/stretch time by a factor (arrival-rate
  calibration without touching the access pattern).
* :func:`merge_traces` — interleave several traces on a shared timeline.
* :func:`with_read_fraction` — deterministically relabel ops to hit a
  target read/write mix (write off-loading experiments).
"""

from __future__ import annotations

import random
from typing import List, Sequence

from repro.errors import ConfigurationError
from repro.traces.record import TraceRecord
from repro.types import OpKind


def slice_requests(records: Sequence[TraceRecord], count: int) -> List[TraceRecord]:
    """The first ``count`` records in time order (paper-style slicing)."""
    if count < 0:
        raise ConfigurationError("count must be >= 0")
    return sorted(records)[:count]


def time_window(
    records: Sequence[TraceRecord], start: float, end: float
) -> List[TraceRecord]:
    """Records with ``start <= time < end``, rebased so the window opens
    at t = 0."""
    if end <= start:
        raise ConfigurationError("window end must exceed start")
    selected = [r for r in sorted(records) if start <= r.time < end]
    return [
        TraceRecord(
            time=r.time - start,
            data_key=r.data_key,
            op=r.op,
            size_bytes=r.size_bytes,
        )
        for r in selected
    ]


def scale_rate(
    records: Sequence[TraceRecord], factor: float
) -> List[TraceRecord]:
    """Multiply the arrival *rate* by ``factor`` (divide every timestamp).

    Doubling the rate halves all inter-arrival gaps while preserving the
    access pattern, burstiness *shape* and popularity skew — the knob used
    to calibrate the synthetic traces against the breakeven time.
    """
    if factor <= 0:
        raise ConfigurationError("factor must be positive")
    return [
        TraceRecord(
            time=r.time / factor,
            data_key=r.data_key,
            op=r.op,
            size_bytes=r.size_bytes,
        )
        for r in sorted(records)
    ]


def merge_traces(*traces: Sequence[TraceRecord]) -> List[TraceRecord]:
    """Interleave traces on one timeline.

    Data keys are namespaced per source trace (``(index, key)``) so equal
    keys in different traces stay distinct data items.
    """
    merged: List[TraceRecord] = []
    for index, trace in enumerate(traces):
        for record in trace:
            merged.append(
                TraceRecord(
                    time=record.time,
                    data_key=(index, record.data_key),
                    op=record.op,
                    size_bytes=record.size_bytes,
                )
            )
    merged.sort()
    return merged


def with_read_fraction(
    records: Sequence[TraceRecord], read_fraction: float, seed: int = 0
) -> List[TraceRecord]:
    """Relabel ops so ~``read_fraction`` of records are reads.

    Deterministic given the seed; timestamps, keys and sizes untouched.
    """
    if not 0.0 <= read_fraction <= 1.0:
        raise ConfigurationError("read_fraction must be in [0, 1]")
    rng = random.Random(seed)
    return [
        TraceRecord(
            time=r.time,
            data_key=r.data_key,
            op=OpKind.READ if rng.random() < read_fraction else OpKind.WRITE,
            size_bytes=r.size_bytes,
        )
        for r in sorted(records)
    ]
