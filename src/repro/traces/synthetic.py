"""Building blocks for synthetic traces: arrival processes and popularity.

The two real traces the paper replays differ chiefly in their arrival
structure — Cello is bursty (timesharing workload; high inter-arrival
variance), Financial1 is a steadier OLTP stream — and share heavy-tailed
block popularity. These primitives model both axes:

* :class:`PoissonArrivals` — memoryless baseline (CV = 1).
* :class:`MMPPArrivals` — two-state Markov-modulated Poisson process; the
  standard parsimonious model of bursty storage traffic (CV > 1).
* :class:`ParetoArrivals` — heavy-tailed inter-arrivals, an alternative
  burstiness model used in sensitivity tests.
* :class:`ZipfPopularity` — Zipf-like block popularity (Breslau et al.,
  cited by the paper for the skew it observed in Cello).
"""

from __future__ import annotations

import math
import random
from abc import ABC, abstractmethod
from typing import List

from repro.errors import ConfigurationError
from repro.placement.zipf import ZipfSampler


class ArrivalProcess(ABC):
    """Generates monotonically non-decreasing arrival timestamps."""

    @abstractmethod
    def generate(self, count: int, rng: random.Random) -> List[float]:
        """Return ``count`` arrival times starting at ~0."""


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson arrivals at ``rate`` requests/second."""

    def __init__(self, rate: float):
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        self.rate = rate

    def generate(self, count: int, rng: random.Random) -> List[float]:
        times: List[float] = []
        now = 0.0
        for _ in range(count):
            now += rng.expovariate(self.rate)
            times.append(now)
        return times


class MMPPArrivals(ArrivalProcess):
    """Two-state Markov-modulated Poisson process.

    The process alternates between a *burst* state with high arrival rate
    and a *quiet* state with low rate; dwell times in each state are
    exponential. This produces the clustered arrivals and long quiet gaps
    characteristic of the Cello timesharing trace.

    Args:
        burst_rate: Requests/second while bursting.
        quiet_rate: Requests/second while quiet.
        mean_burst: Mean seconds per burst period.
        mean_quiet: Mean seconds per quiet period.
    """

    def __init__(
        self,
        burst_rate: float,
        quiet_rate: float,
        mean_burst: float,
        mean_quiet: float,
    ):
        for name, value in (
            ("burst_rate", burst_rate),
            ("quiet_rate", quiet_rate),
            ("mean_burst", mean_burst),
            ("mean_quiet", mean_quiet),
        ):
            if value <= 0:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if burst_rate < quiet_rate:
            raise ConfigurationError("burst_rate must be >= quiet_rate")
        self.burst_rate = burst_rate
        self.quiet_rate = quiet_rate
        self.mean_burst = mean_burst
        self.mean_quiet = mean_quiet

    @property
    def mean_rate(self) -> float:
        """Long-run average arrival rate."""
        weight_burst = self.mean_burst / (self.mean_burst + self.mean_quiet)
        return self.burst_rate * weight_burst + self.quiet_rate * (1 - weight_burst)

    def generate(self, count: int, rng: random.Random) -> List[float]:
        times: List[float] = []
        now = 0.0
        bursting = rng.random() < self.mean_burst / (self.mean_burst + self.mean_quiet)
        state_ends = now + rng.expovariate(
            1.0 / (self.mean_burst if bursting else self.mean_quiet)
        )
        while len(times) < count:
            rate = self.burst_rate if bursting else self.quiet_rate
            candidate = now + rng.expovariate(rate)
            if candidate <= state_ends:
                now = candidate
                times.append(now)
            else:
                now = state_ends
                bursting = not bursting
                state_ends = now + rng.expovariate(
                    1.0 / (self.mean_burst if bursting else self.mean_quiet)
                )
        return times


class ParetoArrivals(ArrivalProcess):
    """Heavy-tailed (Pareto) inter-arrival times.

    Args:
        rate: Target mean arrival rate (requests/second).
        shape: Pareto tail index; must be > 1 for a finite mean. Values
            near 1.5 give pronounced burstiness.
    """

    def __init__(self, rate: float, shape: float = 1.5):
        if rate <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate}")
        if shape <= 1.0:
            raise ConfigurationError(f"shape must exceed 1, got {shape}")
        self.rate = rate
        self.shape = shape
        # mean of Pareto(xm, a) = xm * a / (a - 1); solve xm for 1/rate.
        self._scale = (1.0 / rate) * (shape - 1.0) / shape

    def generate(self, count: int, rng: random.Random) -> List[float]:
        times: List[float] = []
        now = 0.0
        for _ in range(count):
            u = 1.0 - rng.random()  # in (0, 1]
            gap = self._scale / u ** (1.0 / self.shape)
            now += gap
            times.append(now)
        return times


class ZipfPopularity:
    """Zipf-like popularity over ``num_items`` data items.

    Item 0 is the most popular; the synthetic generators rely on this so
    popularity-ordered placement schemes can consume their output directly.
    """

    def __init__(self, num_items: int, exponent: float = 0.9):
        if num_items <= 0:
            raise ConfigurationError("num_items must be positive")
        self.num_items = num_items
        self.exponent = exponent
        self._sampler = ZipfSampler(num_items, exponent)

    def sample(self, rng: random.Random) -> int:
        """Draw one item index (0 = hottest)."""
        return self._sampler.sample(rng)


def coefficient_of_variation(values: List[float]) -> float:
    """CV = stddev / mean (burstiness measure of inter-arrival gaps)."""
    if len(values) < 2:
        raise ConfigurationError("need at least two values")
    mean = sum(values) / len(values)
    if mean == 0:
        return 0.0
    variance = sum((v - mean) ** 2 for v in values) / (len(values) - 1)
    return math.sqrt(variance) / mean


def inter_arrival_gaps(times: List[float]) -> List[float]:
    """Consecutive differences (seconds) of an arrival-time sequence."""
    return [b - a for a, b in zip(times, times[1:])]
