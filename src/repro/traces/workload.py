"""Workload: a trace bound to a data population and a placement.

A :class:`Workload` takes raw :class:`~repro.traces.record.TraceRecord`
streams, filters them to reads (the scheduler only handles reads — the
paper assumes write off-loading), maps each distinct data key to a dense
integer :data:`~repro.types.DataId` in *descending popularity order*
(data id 0 is the hottest item, which popularity-aware placement schemes
rely on), and produces the request stream ``R`` plus summary statistics.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.placement.catalog import PlacementCatalog
from repro.placement.schemes import PlacementScheme
from repro.traces.record import TraceRecord
from repro.traces.synthetic import coefficient_of_variation, inter_arrival_gaps
from repro.types import DataId, OpKind, Request


@dataclass(frozen=True)
class WorkloadStats:
    """Summary statistics of a bound workload.

    ``duration`` is the trace span in seconds (first to last arrival).
    """

    num_requests: int
    num_data: int
    duration: float
    mean_rate: float
    interarrival_cv: float
    max_popularity_share: float

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.num_requests} requests over {self.num_data} data items, "
            f"{self.duration:.0f} s ({self.mean_rate:.2f} req/s), "
            f"inter-arrival CV {self.interarrival_cv:.2f}, "
            f"hottest item {self.max_popularity_share * 100:.2f}% of accesses"
        )


class Workload:
    """Read-request stream derived from a trace."""

    def __init__(self, records: Sequence[TraceRecord], include_writes: bool = False):
        if not records:
            raise ConfigurationError("workload needs at least one trace record")
        selected = [
            record
            for record in sorted(records)
            if include_writes or record.op is OpKind.READ
        ]
        if not selected:
            raise ConfigurationError("no read records in trace")
        # Popularity census first, so data ids are dense and sorted by heat.
        counts: Dict[Hashable, int] = {}
        for record in selected:
            counts[record.data_key] = counts.get(record.data_key, 0) + 1
        by_popularity = sorted(counts.items(), key=lambda kv: (-kv[1], repr(kv[0])))
        self._data_id_of: Dict[Hashable, DataId] = {
            key: data_id for data_id, (key, _count) in enumerate(by_popularity)
        }
        self._access_counts: Dict[DataId, int] = {
            self._data_id_of[key]: count for key, count in counts.items()
        }
        self._requests: List[Request] = [
            Request(
                time=record.time,
                request_id=index,
                data_id=self._data_id_of[record.data_key],
                size_bytes=record.size_bytes,
                op=record.op,
            )
            for index, record in enumerate(selected)
        ]

    @property
    def requests(self) -> List[Request]:
        return list(self._requests)

    @property
    def num_requests(self) -> int:
        return len(self._requests)

    @property
    def data_ids(self) -> List[DataId]:
        """All data ids, ascending == descending popularity."""
        return sorted(self._access_counts)

    @property
    def num_data(self) -> int:
        return len(self._access_counts)

    def access_count(self, data_id: DataId) -> int:
        """How many requests touch ``data_id``."""
        return self._access_counts[data_id]

    @property
    def duration(self) -> float:
        """Trace span in seconds (first to last arrival)."""
        return self._requests[-1].time - self._requests[0].time

    def stats(self) -> WorkloadStats:
        """Summary statistics (rate, burstiness, skew)."""
        times = [request.time for request in self._requests]
        if len(times) >= 3:
            cv = coefficient_of_variation(inter_arrival_gaps(times))
        else:
            cv = 0.0
        duration = self.duration
        hottest = max(self._access_counts.values())
        return WorkloadStats(
            num_requests=self.num_requests,
            num_data=self.num_data,
            duration=duration,
            mean_rate=self.num_requests / duration if duration > 0 else 0.0,
            interarrival_cv=cv,
            max_popularity_share=hottest / self.num_requests,
        )

    def place(
        self, scheme: PlacementScheme, num_disks: int, seed: int = 0
    ) -> PlacementCatalog:
        """Lay the workload's data population out with ``scheme``."""
        rng = random.Random(seed)
        return scheme.place(self.data_ids, num_disks, rng)

    def bind(
        self, scheme: PlacementScheme, num_disks: int, seed: int = 0
    ) -> Tuple[List[Request], PlacementCatalog]:
        """Convenience: (requests, catalog) ready for a scheduler."""
        return self.requests, self.place(scheme, num_disks, seed)
