"""Financial1-like trace: synthetic generator + SPC-format parser.

Financial1 is an OLTP trace from a financial institution, published in the
UMass Trace Repository in the SPC format. Relative to Cello it has much
steadier arrivals (the paper attributes its ~3x lower mean response time
solely to the lower burstiness), with similarly skewed block popularity.

:func:`generate_financial_like` synthesises such a stream (plain Poisson
with a mild diurnal-free rate);
:func:`parse_spc` reads the real SPC ``ASU,LBA,size,opcode,timestamp``
format so the actual trace can be dropped in.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, List

from repro.errors import ConfigurationError, TraceFormatError
from repro.traces.record import TraceRecord
from repro.traces.synthetic import PoissonArrivals, ZipfPopularity
from repro.types import DEFAULT_REQUEST_BYTES, OpKind


@dataclass(frozen=True)
class FinancialLikeConfig:
    """Knobs of the synthetic Financial1-like generator.

    The default mean rate matches the Cello-like generator (~21.5 req/s) so
    cross-trace comparisons isolate burstiness, exactly the contrast the
    paper draws in Appendix A.4.
    """

    num_requests: int = 70_000
    num_data: int = 30_000
    popularity_exponent: float = 0.9
    arrival_rate: float = 21.5
    read_fraction: float = 1.0
    size_bytes: int = DEFAULT_REQUEST_BYTES

    def __post_init__(self) -> None:
        if self.num_requests <= 0:
            raise ConfigurationError("num_requests must be positive")
        if self.num_data <= 0:
            raise ConfigurationError("num_data must be positive")
        if self.arrival_rate <= 0:
            raise ConfigurationError("arrival_rate must be positive")
        if not 0.0 <= self.read_fraction <= 1.0:
            raise ConfigurationError("read_fraction must be in [0, 1]")

    def scaled(self, factor: float) -> "FinancialLikeConfig":
        """Scaled-down copy preserving per-disk request density."""
        if factor <= 0:
            raise ConfigurationError("factor must be positive")
        return FinancialLikeConfig(
            num_requests=max(1, int(self.num_requests * factor)),
            num_data=max(1, int(self.num_data * factor)),
            popularity_exponent=self.popularity_exponent,
            arrival_rate=self.arrival_rate * factor,
            read_fraction=self.read_fraction,
            size_bytes=self.size_bytes,
        )


def generate_financial_like(
    config: FinancialLikeConfig = FinancialLikeConfig(), seed: int = 0
) -> List[TraceRecord]:
    """Generate a steady OLTP-like synthetic trace (Financial1 substitute)."""
    rng = random.Random(seed)
    arrivals = PoissonArrivals(config.arrival_rate).generate(
        config.num_requests, rng
    )
    popularity = ZipfPopularity(config.num_data, config.popularity_exponent)
    records = []
    for arrival in arrivals:
        op = OpKind.READ if rng.random() < config.read_fraction else OpKind.WRITE
        records.append(
            TraceRecord(
                time=arrival,
                data_key=popularity.sample(rng),
                op=op,
                size_bytes=config.size_bytes,
            )
        )
    return records


def parse_spc(lines: Iterable[str]) -> List[TraceRecord]:
    """Parse the SPC trace format used by the UMass repository.

    Comma-separated columns::

        ASU, LBA, size-bytes, opcode (r/R/w/W), timestamp-seconds [, ...]

    Extra trailing columns are ignored. Timestamps are rebased to t = 0.
    """
    parsed = []
    for line_number, line in enumerate(lines, start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        fields = [f.strip() for f in stripped.split(",")]
        if len(fields) < 5:
            raise TraceFormatError(
                f"spc line {line_number}: expected >= 5 fields, got {len(fields)}"
            )
        try:
            asu = int(fields[0])
            lba = int(fields[1])
            size = int(fields[2])
            timestamp = float(fields[4])
        except ValueError as exc:
            raise TraceFormatError(f"spc line {line_number}: {exc}")
        opcode = fields[3].lower()
        if opcode not in ("r", "w"):
            raise TraceFormatError(
                f"spc line {line_number}: opcode must be r or w, got {fields[3]!r}"
            )
        parsed.append((timestamp, (asu, lba), opcode == "r", max(size, 1)))
    if not parsed:
        return []
    base_time = min(entry[0] for entry in parsed)
    raw = [
        TraceRecord(
            time=timestamp - base_time,
            data_key=data_key,
            op=OpKind.READ if is_read else OpKind.WRITE,
            size_bytes=size,
        )
        for timestamp, data_key, is_read, size in parsed
    ]
    raw.sort()
    return raw
