"""Block caching in front of the disk array (power-aware eviction)."""

from repro.cache.policy import (
    BlockCache,
    LRUBlockCache,
    PowerAwareLRUCache,
    make_cache,
)

__all__ = [
    "BlockCache",
    "LRUBlockCache",
    "PowerAwareLRUCache",
    "make_cache",
]
