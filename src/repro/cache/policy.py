"""Block cache policies, including power-aware eviction.

The paper's related work (Section 1) lists power-aware caching (Zhu &
Zhou's PA-LRU / PB-LRU) as complementary to scheduling: "always prefer
evicting blocks from the cache residing on idle disks rather than from
disks in standby mode" — a hit on a standby disk's block avoids a full
spin-up, so those blocks are the precious ones.

* :class:`LRUBlockCache` — classic least-recently-used baseline.
* :class:`PowerAwareLRUCache` — LRU order, but eviction scans the
  ``scan_depth`` least-recent entries and prefers a victim whose home
  disk is currently spinning (cheap to re-fetch); only if every candidate
  lives on a sleeping disk does it fall back to plain LRU.

Caches are keyed by data id and remember each block's *home disk* (where
it was last fetched from) so the eviction policy can consult live disk
states through the scheduler's :class:`~repro.core.cost.DiskView`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from collections import OrderedDict
from typing import Callable, Optional

from repro.errors import ConfigurationError
from repro.power.states import DiskPowerState
from repro.types import DataId, DiskId

#: Callable giving the cache a disk's live power state.
DiskStateProbe = Callable[[DiskId], DiskPowerState]


class BlockCache(ABC):
    """A bounded cache of data blocks in front of the disk array."""

    def __init__(self, capacity: int):
        if capacity < 0:
            raise ConfigurationError("cache capacity must be >= 0")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0

    @abstractmethod
    def lookup(self, data_id: DataId) -> bool:
        """True (and bookkeeping updated) when ``data_id`` is cached."""

    @abstractmethod
    def insert(
        self, data_id: DataId, home_disk: DiskId, probe: DiskStateProbe
    ) -> None:
        """Cache ``data_id`` fetched from ``home_disk``, evicting if full."""

    @property
    def hit_ratio(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def __len__(self) -> int:  # pragma: no cover - trivial in subclasses
        raise NotImplementedError


class LRUBlockCache(BlockCache):
    """Classic LRU over data ids."""

    def __init__(self, capacity: int):
        super().__init__(capacity)
        self._entries: "OrderedDict[DataId, DiskId]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, data_id: DataId) -> bool:
        return data_id in self._entries

    def lookup(self, data_id: DataId) -> bool:
        if data_id in self._entries:
            self._entries.move_to_end(data_id)
            self.hits += 1
            return True
        self.misses += 1
        return False

    def insert(
        self, data_id: DataId, home_disk: DiskId, probe: DiskStateProbe
    ) -> None:
        if self.capacity == 0:
            return
        if data_id in self._entries:
            self._entries.move_to_end(data_id)
            self._entries[data_id] = home_disk
            return
        if len(self._entries) >= self.capacity:
            self._evict(probe)
        self._entries[data_id] = home_disk

    def _evict(self, probe: DiskStateProbe) -> None:
        self._entries.popitem(last=False)

    def home_disk(self, data_id: DataId) -> DiskId:
        """The disk the cached block was last fetched from."""
        return self._entries[data_id]


class PowerAwareLRUCache(LRUBlockCache):
    """PA-LRU-style eviction: spare the blocks of sleeping disks.

    Args:
        capacity: Blocks held.
        scan_depth: How many least-recent entries to consider per
            eviction; the first whose home disk is spinning is evicted.
    """

    def __init__(self, capacity: int, scan_depth: int = 8):
        super().__init__(capacity)
        if scan_depth <= 0:
            raise ConfigurationError("scan_depth must be positive")
        self.scan_depth = scan_depth

    def _evict(self, probe: DiskStateProbe) -> None:
        candidates = []
        for data_id in self._entries:  # oldest first
            candidates.append(data_id)
            if len(candidates) >= self.scan_depth:
                break
        for data_id in candidates:
            if probe(self._entries[data_id]).is_spinning:
                del self._entries[data_id]
                return
        # Every candidate's disk sleeps: plain LRU fallback.
        self._entries.popitem(last=False)


def make_cache(
    kind: Optional[str], capacity: int, scan_depth: int = 8
) -> Optional[BlockCache]:
    """Factory by name: ``None``/"none", "lru", "pa-lru"."""
    if kind is None or kind == "none":
        return None
    if kind == "lru":
        return LRUBlockCache(capacity)
    if kind == "pa-lru":
        return PowerAwareLRUCache(capacity, scan_depth)
    raise ConfigurationError(f"unknown cache kind {kind!r}")
